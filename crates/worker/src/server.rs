//! The worker server: owns a weight shard and executes expert batches.
//!
//! A [`WorkerServer`] listens on a TCP address or a Unix-domain socket,
//! accepts engine connections, and serves the framed protocol of
//! [`crate::protocol`]: version negotiation, [`LoadShard`] to materialize
//! its deterministic weight shard, then a stream of pipelined
//! [`ExecuteBatch`] requests answered strictly in order. The same server
//! runs in-process (behind [`WorkerServer::spawn`]) for deterministic tests
//! and benches, and as a standalone process via the `hybrimoe_worker` bin.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use hybrimoe_kernels::{backend::KernelBackend, ExecScratch, WorkerPool};
use hybrimoe_model::{
    ids::shard_of, ExpertId, ExpertKey, ExpertShape, LayerId, ModelConfig, WeightStore,
    WeightStoreError,
};

use hybrimoe_fault::{FaultPlan, FaultRates, FaultStream};

use crate::client::Endpoint;
use crate::protocol::{
    encode_frame, read_frame, write_frame, ErrorCode, ErrorReply, ExecuteBatch, ExecuteBatchAck,
    HeartbeatAck, Hello, HelloAck, LoadShard, LoadShardAck, Opcode, ProtocolError,
};
use crate::transport::{write_through, BoundListener, FrameFate, FrameInjector, WireStream};
use crate::wire_backend;

/// Tuning and fault-injection knobs of a [`WorkerServer`].
#[derive(Debug, Clone)]
pub struct WorkerServerOptions {
    /// Kernel threads of the worker's compute pool.
    pub threads: usize,
    /// Fault injection for failover tests: after this many
    /// [`ExecuteBatch`] requests have been *received* (across all
    /// connections), the worker drops the triggering connection without
    /// replying and stops accepting — a deterministic mid-request crash.
    /// Equivalent to `fault_plan.rates.fail_after`, which it overrides
    /// when both are set.
    pub fail_after_executes: Option<u64>,
    /// Whether a [`Opcode::Drain`] also stops the accept loop (the
    /// standalone bin's exit path). Defaults to `true`.
    pub drain_stops_server: bool,
    /// Seeded fault plan for chaos runs: per-reply connection drops,
    /// delays, and corrupt/truncated frames on [`Opcode::ExecuteBatchAck`]
    /// replies, each connection drawing its own deterministic decision
    /// stream. Defaults to [`FaultPlan::off`].
    pub fault_plan: FaultPlan,
}

impl Default for WorkerServerOptions {
    fn default() -> Self {
        WorkerServerOptions {
            threads: 2,
            fail_after_executes: None,
            drain_stops_server: true,
            fault_plan: FaultPlan::off(),
        }
    }
}

impl WorkerServerOptions {
    /// The crash-after-N-executes limit in force: the explicit legacy
    /// knob wins, else the fault plan's folded `fail_after` rate.
    fn effective_fail_after(&self) -> Option<u64> {
        self.fail_after_executes
            .or(self.fault_plan.rates.fail_after)
    }
}

/// Per-connection reply-frame injector driven by a [`FaultPlan`].
///
/// One Bernoulli roll per fault class per frame, always in the same
/// order, so the decision sequence of connection `i` under seed `s` is
/// identical on every run.
struct PlanInjector {
    rates: FaultRates,
    stream: FaultStream,
}

impl PlanInjector {
    fn new(plan: &FaultPlan, connection: u64) -> Self {
        PlanInjector {
            rates: plan.rates,
            stream: plan.stream(&format!("worker.conn.{connection}")),
        }
    }
}

impl FrameInjector for PlanInjector {
    fn fate(&mut self, frame_len: usize) -> FrameFate {
        let drop = self.stream.roll_ppm(self.rates.conn_drop_ppm);
        let truncate = self.stream.roll_ppm(self.rates.truncate_ppm);
        let corrupt = self.stream.roll_ppm(self.rates.corrupt_ppm);
        let delay = self.stream.roll_ppm(self.rates.reply_delay_ppm);
        let noise = self.stream.next_u64() as usize;
        if drop {
            FrameFate::Drop
        } else if truncate {
            FrameFate::Truncate {
                keep: noise % frame_len.max(1),
            }
        } else if corrupt {
            FrameFate::Corrupt { offset: noise }
        } else if delay {
            FrameFate::Delay(Duration::from_millis(self.rates.reply_delay_ms))
        } else {
            FrameFate::Deliver
        }
    }
}

/// An expert worker serving the framed protocol on one endpoint.
#[derive(Debug)]
pub struct WorkerServer {
    listener: BoundListener,
    endpoint: Endpoint,
    options: WorkerServerOptions,
    shutdown: Arc<AtomicBool>,
    executed: Arc<AtomicU64>,
}

impl WorkerServer {
    /// Binds to `endpoint` without accepting yet. A TCP endpoint may use
    /// port `0`; [`WorkerServer::endpoint`] reports the resolved port.
    pub fn bind(endpoint: &Endpoint, options: WorkerServerOptions) -> io::Result<WorkerServer> {
        let listener = BoundListener::bind(endpoint)?;
        let endpoint = listener.local_endpoint()?;
        Ok(WorkerServer {
            listener,
            endpoint,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            executed: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound endpoint, with any TCP port-0 resolved.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Runs the accept loop on a background thread, returning a handle
    /// that can stop it. This is the worker-in-a-thread mode tests and
    /// benches use to exercise the real codec without process management.
    pub fn spawn(self) -> WorkerHandle {
        let endpoint = self.endpoint.clone();
        let shutdown = Arc::clone(&self.shutdown);
        let join = thread::spawn(move || {
            let _ = self.run();
        });
        WorkerHandle {
            endpoint,
            shutdown,
            join: Some(join),
        }
    }

    /// Runs the accept loop on the calling thread until shut down (or, if
    /// `drain_stops_server`, until a client drains the worker).
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut connections: u64 = 0;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.listener.accept() {
                Ok(stream) => {
                    stream.set_nonblocking(false)?;
                    let options = self.options.clone();
                    let shutdown = Arc::clone(&self.shutdown);
                    let executed = Arc::clone(&self.executed);
                    let connection = connections;
                    connections += 1;
                    thread::spawn(move || {
                        let _ = serve_connection(stream, options, shutdown, executed, connection);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Controls a [`WorkerServer`] running on a background thread.
#[derive(Debug)]
pub struct WorkerHandle {
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The endpoint the worker is serving on.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stops the accept loop and joins the server thread. In-flight
    /// connection threads finish their current request and exit when
    /// their peer disconnects.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Everything a connection holds after a successful [`LoadShard`].
struct Loaded {
    spec: LoadShard,
    store: WeightStore,
    pool: WorkerPool,
    scratch: ExecScratch,
    backend: &'static dyn KernelBackend,
    output: Vec<f32>,
}

/// Serves one engine connection: handshake, then a request loop that
/// answers every frame in arrival order (the wire-level FIFO the client's
/// pipelining relies on).
fn serve_connection(
    mut stream: WireStream,
    options: WorkerServerOptions,
    shutdown: Arc<AtomicBool>,
    executed: Arc<AtomicU64>,
    connection: u64,
) -> Result<(), ProtocolError> {
    let mut payload = Vec::new();
    // The chaos seam: execute replies of a faulty worker route through a
    // per-connection injector. Handshake and shard loading stay clean so
    // a chaos run still exercises the execute path, not just setup.
    let mut injector =
        (!options.fault_plan.is_off()).then(|| PlanInjector::new(&options.fault_plan, connection));
    let mut frame = Vec::new();

    // Handshake: the first frame must be a Hello with an overlapping
    // version range. A frame-level version outside our range is answered
    // with the same VersionMismatch error a failed negotiation gets.
    let header = match read_frame(&mut stream, &mut payload) {
        Ok(h) => h,
        Err(ProtocolError::UnsupportedVersion(v)) => {
            return reply_error(
                &mut stream,
                0,
                ErrorCode::VersionMismatch,
                format!("frame version {v} unsupported"),
            );
        }
        Err(e) => return Err(e),
    };
    if header.opcode != Opcode::Hello {
        return reply_error(
            &mut stream,
            header.request_id,
            ErrorCode::BadPayload,
            "expected Hello as the first frame",
        );
    }
    let hello = Hello::decode(&payload)?;
    let version = match hello.negotiate() {
        Some(v) => v,
        None => {
            return reply_error(
                &mut stream,
                header.request_id,
                ErrorCode::VersionMismatch,
                format!(
                    "no shared version in client range {}..={}",
                    hello.min_version, hello.max_version
                ),
            );
        }
    };
    let mut buf = Vec::new();
    HelloAck { version }.encode(&mut buf);
    write_frame(&mut stream, Opcode::HelloAck, header.request_id, &buf)?;

    let mut loaded: Option<Loaded> = None;

    loop {
        let header = match read_frame(&mut stream, &mut payload) {
            Ok(h) => h,
            // Peer hung up between requests: normal teardown.
            Err(ProtocolError::Truncated) => return Ok(()),
            Err(e) => return Err(e),
        };
        let id = header.request_id;
        match header.opcode {
            Opcode::Hello => {
                // Idempotent: re-acknowledge the already-negotiated version.
                buf.clear();
                HelloAck { version }.encode(&mut buf);
                write_frame(&mut stream, Opcode::HelloAck, id, &buf)?;
            }
            Opcode::LoadShard => match LoadShard::decode(&payload) {
                Ok(spec) => {
                    loaded = Some(load_shard(&spec, &options));
                    let owned = (0..spec.routed_experts)
                        .filter(|&e| {
                            shard_of(ExpertId(e), spec.num_workers as usize) == spec.worker as usize
                        })
                        .count() as u32;
                    buf.clear();
                    LoadShardAck {
                        experts_owned: owned,
                    }
                    .encode(&mut buf);
                    write_frame(&mut stream, Opcode::LoadShardAck, id, &buf)?;
                }
                Err(e) => {
                    reply_error(&mut stream, id, ErrorCode::BadPayload, e.to_string())?;
                }
            },
            Opcode::ExecuteBatch => {
                if let Some(limit) = options.effective_fail_after() {
                    // fetch_add returns the prior count, so requests
                    // 1..=limit succeed and request limit+1 trips the fault.
                    if executed.fetch_add(1, Ordering::Relaxed) >= limit {
                        shutdown.store(true, Ordering::Relaxed);
                        // Drop the stream without a reply: the client sees
                        // a mid-request disconnect.
                        return Ok(());
                    }
                } else {
                    executed.fetch_add(1, Ordering::Relaxed);
                }
                let Some(state) = loaded.as_mut() else {
                    reply_error(&mut stream, id, ErrorCode::NotLoaded, "no shard loaded")?;
                    continue;
                };
                match ExecuteBatch::decode(&payload) {
                    Ok(batch) => match execute_batch(state, &batch) {
                        Ok(()) => {
                            buf.clear();
                            ExecuteBatchAck {
                                tokens: batch.tokens,
                                hidden: batch.hidden,
                                data: state.output.clone(),
                            }
                            .encode(&mut buf);
                            match injector.as_mut() {
                                None => {
                                    write_frame(&mut stream, Opcode::ExecuteBatchAck, id, &buf)?;
                                }
                                Some(chaos) => {
                                    frame.clear();
                                    encode_frame(Opcode::ExecuteBatchAck, id, &buf, &mut frame);
                                    if !write_through(&mut stream, chaos, &frame)? {
                                        // The injector dropped (or truncated)
                                        // the connection: the client sees a
                                        // mid-request disconnect.
                                        return Ok(());
                                    }
                                }
                            }
                        }
                        Err((code, msg)) => {
                            reply_error(&mut stream, id, code, msg)?;
                        }
                    },
                    Err(e) => {
                        reply_error(&mut stream, id, ErrorCode::BadPayload, e.to_string())?;
                    }
                }
            }
            Opcode::Heartbeat => {
                buf.clear();
                HeartbeatAck {
                    executed: executed.load(Ordering::Relaxed),
                    inflight: 0,
                }
                .encode(&mut buf);
                write_frame(&mut stream, Opcode::HeartbeatAck, id, &buf)?;
            }
            Opcode::Drain => {
                // Pipelined requests are answered strictly FIFO, so every
                // request sent before the Drain has already been replied
                // to by the time this frame is read — draining never
                // abandons in-flight work.
                write_frame(&mut stream, Opcode::DrainAck, id, &[])?;
                if options.drain_stops_server {
                    shutdown.store(true, Ordering::Relaxed);
                }
                return Ok(());
            }
            // Reply opcodes arriving as requests are a protocol violation;
            // answer and keep the connection (the client can resync).
            Opcode::HelloAck
            | Opcode::LoadShardAck
            | Opcode::ExecuteBatchAck
            | Opcode::HeartbeatAck
            | Opcode::DrainAck
            | Opcode::Error => {
                reply_error(
                    &mut stream,
                    id,
                    ErrorCode::BadPayload,
                    format!("{:?} is a reply opcode, not a request", header.opcode),
                )?;
            }
        }
    }
}

/// Materializes connection state from a [`LoadShard`] spec. The store is
/// built over exactly the engine's deterministic weight construction
/// (same seed, same shapes), so worker outputs match local ones.
fn load_shard(spec: &LoadShard, options: &WorkerServerOptions) -> Loaded {
    let config = ModelConfig {
        name: format!("worker{}-shard", spec.worker),
        layers: spec.layers,
        shared_experts: 0,
        routed_experts: spec.routed_experts,
        activated_experts: 1,
        shared_shape: None,
        routed_shape: ExpertShape::new(spec.hidden, spec.inter),
    };
    Loaded {
        store: WeightStore::new(config, spec.seed, spec.weight_budget_bytes),
        pool: WorkerPool::new(options.threads.max(1)),
        scratch: ExecScratch::new(),
        backend: wire_backend::from_wire(spec.backend)
            .unwrap_or_default()
            .resolve(),
        output: Vec::new(),
        spec: *spec,
    }
}

/// Runs one expert batch, leaving the outputs in `state.output`.
fn execute_batch(state: &mut Loaded, batch: &ExecuteBatch) -> Result<(), (ErrorCode, String)> {
    let spec = &state.spec;
    if shard_of(ExpertId(batch.expert), spec.num_workers as usize) != spec.worker as usize {
        return Err((
            ErrorCode::NotMyShard,
            format!(
                "expert {} maps to worker {}, this is worker {}",
                batch.expert,
                shard_of(ExpertId(batch.expert), spec.num_workers as usize),
                spec.worker
            ),
        ));
    }
    if batch.hidden != spec.hidden {
        return Err((
            ErrorCode::BadPayload,
            format!("hidden {} != shard hidden {}", batch.hidden, spec.hidden),
        ));
    }
    let key = ExpertKey::new(LayerId(batch.layer), ExpertId(batch.expert));
    let tokens = batch.tokens as usize;
    state.output.clear();
    state.output.resize(tokens * batch.hidden as usize, 0.0);
    if tokens == 0 {
        return Ok(());
    }
    let ffn = match state.store.expert(key) {
        Ok(ffn) => ffn,
        Err(WeightStoreError::BudgetExceeded { needed, budget }) => {
            return Err((
                ErrorCode::WeightBudget,
                format!("need {needed} bytes, budget {budget}"),
            ));
        }
        Err(e) => return Err((ErrorCode::BadPayload, e.to_string())),
    };
    ffn.forward_batch_into(
        &batch.data,
        tokens,
        &mut state.output,
        &mut state.scratch,
        &state.pool,
        state.backend,
    );
    Ok(())
}

/// Sends an [`Opcode::Error`] reply.
fn reply_error(
    stream: &mut WireStream,
    request_id: u32,
    code: ErrorCode,
    message: impl Into<String>,
) -> Result<(), ProtocolError> {
    let mut buf = Vec::new();
    ErrorReply::new(code, message).encode(&mut buf);
    write_frame(stream, Opcode::Error, request_id, &buf)
}
