//! Stream abstraction over the two supported transports: TCP and
//! Unix-domain sockets. The protocol itself is transport-agnostic (any
//! `Read + Write` byte stream); this module is the small shim that lets
//! the client and server speak either without duplicating their logic.
//!
//! It also hosts the [`FrameInjector`] seam: outbound reply frames can be
//! routed through [`write_through`], which lets a deterministic fault
//! plan drop, delay, corrupt, or truncate them. The default injector
//! ([`NoFaults`]) always delivers, so the hook costs one predictable
//! branch when fault injection is off.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use crate::client::Endpoint;

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum WireStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain socket connection.
    Unix(UnixStream),
}

impl WireStream {
    /// Connects to `endpoint`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<WireStream> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            Endpoint::Unix(path) => Ok(WireStream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Sets the read timeout, the mechanism behind per-request deadlines.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_read_timeout(timeout),
            WireStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Switches the stream between blocking and non-blocking mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_nonblocking(nonblocking),
            WireStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            WireStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport.
pub enum BoundListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain socket listener (the socket file is removed on drop).
    Unix(UnixListener, PathBuf),
}

impl fmt::Debug for BoundListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundListener::Tcp(l) => write!(f, "BoundListener::Tcp({:?})", l.local_addr()),
            BoundListener::Unix(_, p) => write!(f, "BoundListener::Unix({})", p.display()),
        }
    }
}

impl BoundListener {
    /// Binds to `endpoint`. A stale Unix socket file from a previous run
    /// is removed first.
    pub fn bind(endpoint: &Endpoint) -> io::Result<BoundListener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(BoundListener::Tcp(TcpListener::bind(addr.as_str())?)),
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(BoundListener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    /// The endpoint actually bound, with any TCP port-0 resolved.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            BoundListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            BoundListener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }

    /// Switches the listener between blocking and non-blocking accepts.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            BoundListener::Tcp(l) => l.set_nonblocking(nonblocking),
            BoundListener::Unix(l, _) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<WireStream> {
        match self {
            BoundListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            BoundListener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                Ok(WireStream::Unix(stream))
            }
        }
    }
}

impl Drop for BoundListener {
    fn drop(&mut self) {
        if let BoundListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// What a [`FrameInjector`] decides to do with one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Write the frame unchanged.
    Deliver,
    /// Sleep this long, then write the frame unchanged.
    Delay(Duration),
    /// Flip one byte of the frame *header* before writing, so the peer's
    /// codec detects the damage (bad magic / version / opcode / length /
    /// request id) instead of silently consuming wrong data.
    Corrupt {
        /// Byte to flip, taken modulo the header length.
        offset: usize,
    },
    /// Write only a strict prefix of the frame, then drop the connection.
    Truncate {
        /// Bytes to keep, clamped below the frame length.
        keep: usize,
    },
    /// Drop the connection without writing anything.
    Drop,
}

/// Decides the fate of each outbound frame at one injection site.
///
/// Implementations draw from a deterministic per-site stream (see
/// `hybrimoe_fault::FaultPlan::stream`), so a given connection makes the
/// same sequence of decisions on every run with the same seed.
pub trait FrameInjector: Send {
    /// The fate of the next outbound frame, which is `frame_len` bytes.
    fn fate(&mut self, frame_len: usize) -> FrameFate;
}

/// The injector that always delivers: the zero-cost-when-off default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FrameInjector for NoFaults {
    fn fate(&mut self, _frame_len: usize) -> FrameFate {
        FrameFate::Deliver
    }
}

/// Length of the frame header [`FrameFate::Corrupt`] flips a byte in
/// (mirrors `protocol::HEADER_LEN`; duplicated to keep this module free
/// of codec imports).
const CORRUPT_SPAN: usize = 14;

/// Writes an already-encoded frame through `injector`.
///
/// Returns `Ok(true)` when the connection should stay up and `Ok(false)`
/// when the injector dropped it (after a truncated write or without any
/// write). Transport errors pass through unchanged.
pub fn write_through(
    stream: &mut WireStream,
    injector: &mut dyn FrameInjector,
    frame: &[u8],
) -> io::Result<bool> {
    match injector.fate(frame.len()) {
        FrameFate::Deliver => {
            stream.write_all(frame)?;
            stream.flush()?;
            Ok(true)
        }
        FrameFate::Delay(pause) => {
            std::thread::sleep(pause);
            stream.write_all(frame)?;
            stream.flush()?;
            Ok(true)
        }
        FrameFate::Corrupt { offset } => {
            let mut damaged = frame.to_vec();
            let span = CORRUPT_SPAN.min(damaged.len());
            if span > 0 {
                damaged[offset % span] ^= 0xFF;
            }
            stream.write_all(&damaged)?;
            stream.flush()?;
            Ok(true)
        }
        FrameFate::Truncate { keep } => {
            let keep = keep.min(frame.len().saturating_sub(1));
            stream.write_all(&frame[..keep])?;
            let _ = stream.flush();
            Ok(false)
        }
        FrameFate::Drop => Ok(false),
    }
}
