//! Stream abstraction over the two supported transports: TCP and
//! Unix-domain sockets. The protocol itself is transport-agnostic (any
//! `Read + Write` byte stream); this module is the small shim that lets
//! the client and server speak either without duplicating their logic.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use crate::client::Endpoint;

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum WireStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain socket connection.
    Unix(UnixStream),
}

impl WireStream {
    /// Connects to `endpoint`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<WireStream> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            Endpoint::Unix(path) => Ok(WireStream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Sets the read timeout, the mechanism behind per-request deadlines.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_read_timeout(timeout),
            WireStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Switches the stream between blocking and non-blocking mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_nonblocking(nonblocking),
            WireStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            WireStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport.
pub enum BoundListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain socket listener (the socket file is removed on drop).
    Unix(UnixListener, PathBuf),
}

impl fmt::Debug for BoundListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundListener::Tcp(l) => write!(f, "BoundListener::Tcp({:?})", l.local_addr()),
            BoundListener::Unix(_, p) => write!(f, "BoundListener::Unix({})", p.display()),
        }
    }
}

impl BoundListener {
    /// Binds to `endpoint`. A stale Unix socket file from a previous run
    /// is removed first.
    pub fn bind(endpoint: &Endpoint) -> io::Result<BoundListener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(BoundListener::Tcp(TcpListener::bind(addr.as_str())?)),
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(BoundListener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    /// The endpoint actually bound, with any TCP port-0 resolved.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            BoundListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            BoundListener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }

    /// Switches the listener between blocking and non-blocking accepts.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            BoundListener::Tcp(l) => l.set_nonblocking(nonblocking),
            BoundListener::Unix(l, _) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<WireStream> {
        match self {
            BoundListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(WireStream::Tcp(stream))
            }
            BoundListener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                Ok(WireStream::Unix(stream))
            }
        }
    }
}

impl Drop for BoundListener {
    fn drop(&mut self) {
        if let BoundListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}
