//! The framed wire protocol spoken between the engine and expert workers.
//!
//! Every message is one **frame**: a fixed 14-byte header followed by an
//! opcode-specific payload. All integers are big-endian (network order);
//! `f32` tensors travel as their IEEE-754 bit patterns, so a round trip is
//! bit-exact.
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0x48594D57 ("HYMW")
//! 4       1     version      protocol version (currently 1)
//! 5       1     opcode       see the opcode table
//! 6       4     request id   echoed verbatim in the reply
//! 10      4     payload len  bytes following the header (<= 32 MiB)
//! ```
//!
//! The byte-level layout, the opcode table, and the version-negotiation and
//! error-reply semantics are documented in `docs/protocol.md`, which a test
//! keeps in sync by round-tripping its example frames through this codec.
//!
//! # Example
//!
//! ```
//! use hybrimoe_worker::protocol::{decode_frame, encode_frame, Opcode, HEADER_LEN};
//!
//! let mut wire = Vec::new();
//! encode_frame(Opcode::Heartbeat, 7, &[], &mut wire);
//! assert_eq!(wire.len(), HEADER_LEN);
//! let (header, payload) = decode_frame(&wire).unwrap();
//! assert_eq!(header.opcode, Opcode::Heartbeat);
//! assert_eq!(header.request_id, 7);
//! assert!(payload.is_empty());
//! ```

use std::fmt;
use std::io::{self, Read, Write};

/// The frame magic, ASCII `HYMW`.
pub const MAGIC: u32 = 0x4859_4D57;

/// The protocol version this build speaks.
pub const VERSION: u8 = 1;

/// The oldest protocol version this build still understands.
pub const MIN_VERSION: u8 = 1;

/// Frame header length in bytes: magic + version + opcode + request id +
/// payload length.
pub const HEADER_LEN: usize = 14;

/// Upper bound on a frame's payload. A 32 MiB ceiling bounds worker memory
/// against corrupt or hostile length fields while leaving room for a
/// 2048-token batch of an 4096-wide model.
pub const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;

/// Frame opcodes. Requests use odd values, their acknowledgments the next
/// even value; [`Opcode::Error`] answers any request that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Version negotiation; first frame on every connection.
    Hello = 0x01,
    /// Accepts a [`Opcode::Hello`], carrying the negotiated version.
    HelloAck = 0x02,
    /// Instructs the worker to materialize its weight shard.
    LoadShard = 0x03,
    /// Acknowledges a shard load with the number of experts owned.
    LoadShardAck = 0x04,
    /// One expert's gathered token batch to execute.
    ExecuteBatch = 0x05,
    /// The batch's outputs, same shape as the request tensor.
    ExecuteBatchAck = 0x06,
    /// Liveness probe.
    Heartbeat = 0x07,
    /// Answers a probe with the worker's execution counters.
    HeartbeatAck = 0x08,
    /// Asks the worker to finish in-flight work and close.
    Drain = 0x09,
    /// Acknowledges a drain; the worker closes the connection after.
    DrainAck = 0x0A,
    /// Error reply to any request (see [`ErrorCode`]).
    Error = 0x0F,
}

impl Opcode {
    /// Parses a wire opcode byte.
    pub fn from_u8(byte: u8) -> Option<Opcode> {
        Some(match byte {
            0x01 => Opcode::Hello,
            0x02 => Opcode::HelloAck,
            0x03 => Opcode::LoadShard,
            0x04 => Opcode::LoadShardAck,
            0x05 => Opcode::ExecuteBatch,
            0x06 => Opcode::ExecuteBatchAck,
            0x07 => Opcode::Heartbeat,
            0x08 => Opcode::HeartbeatAck,
            0x09 => Opcode::Drain,
            0x0A => Opcode::DrainAck,
            0x0F => Opcode::Error,
            _ => return None,
        })
    }
}

/// Why an [`Opcode::Error`] reply was sent (the payload's leading `u16`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// No overlap between the client's and the worker's version ranges.
    /// The worker closes the connection after this reply.
    VersionMismatch = 1,
    /// The requested expert is not in this worker's shard.
    NotMyShard = 2,
    /// The payload failed to decode or its dimensions are inconsistent.
    BadPayload = 3,
    /// The worker's weight budget cannot materialize the expert.
    WeightBudget = 4,
    /// The worker is draining and accepts no new work.
    Draining = 5,
    /// A request arrived before [`Opcode::LoadShard`] configured the worker.
    NotLoaded = 6,
    /// Any other worker-side failure; the message names it.
    Internal = 7,
}

impl ErrorCode {
    /// Parses a wire error code.
    pub fn from_u16(raw: u16) -> Option<ErrorCode> {
        Some(match raw {
            1 => ErrorCode::VersionMismatch,
            2 => ErrorCode::NotMyShard,
            3 => ErrorCode::BadPayload,
            4 => ErrorCode::WeightBudget,
            5 => ErrorCode::Draining,
            6 => ErrorCode::NotLoaded,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// What went wrong while encoding, decoding, or transporting frames.
#[derive(Debug)]
pub enum ProtocolError {
    /// The first four bytes were not [`MAGIC`]; the stream is not speaking
    /// this protocol (or has desynchronized) and must be closed.
    BadMagic(u32),
    /// The frame's version byte is outside `MIN_VERSION..=VERSION`.
    UnsupportedVersion(u8),
    /// The opcode byte names no known opcode.
    UnknownOpcode(u8),
    /// The header announces a payload longer than [`MAX_PAYLOAD`].
    Oversized {
        /// The announced payload length.
        len: u32,
        /// The enforced ceiling ([`MAX_PAYLOAD`]).
        max: u32,
    },
    /// The stream ended inside a header or announced payload.
    Truncated,
    /// The payload decoded structurally but its contents are inconsistent.
    BadPayload(String),
    /// An I/O error on the underlying stream.
    Io(io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic(got) => {
                write!(f, "bad frame magic {got:#010x} (expected {MAGIC:#010x})")
            }
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (speak {MIN_VERSION}..={VERSION})"
                )
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte ceiling")
            }
            ProtocolError::Truncated => f.write_str("stream ended mid-frame"),
            ProtocolError::BadPayload(why) => write!(f, "bad payload: {why}"),
            ProtocolError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated
        } else {
            ProtocolError::Io(e)
        }
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame's protocol version byte.
    pub version: u8,
    /// What the frame carries.
    pub opcode: Opcode,
    /// Correlates a reply with its request under pipelining.
    pub request_id: u32,
    /// Payload bytes following the header.
    pub len: u32,
}

/// Appends one whole frame (header + payload) to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — callers build payloads and
/// are expected to respect the ceiling they enforce on the receive side.
pub fn encode_frame(opcode: Opcode, request_id: u32, payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "payload of {} bytes exceeds MAX_PAYLOAD",
        payload.len()
    );
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(VERSION);
    out.push(opcode as u8);
    out.extend_from_slice(&request_id.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Decodes the 14-byte header at the start of `bytes`.
pub fn decode_header(bytes: &[u8]) -> Result<FrameHeader, ProtocolError> {
    if bytes.len() < HEADER_LEN {
        return Err(ProtocolError::Truncated);
    }
    let magic = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let version = bytes[4];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ProtocolError::UnsupportedVersion(version));
    }
    let opcode = Opcode::from_u8(bytes[5]).ok_or(ProtocolError::UnknownOpcode(bytes[5]))?;
    let request_id = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
    let len = u32::from_be_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok(FrameHeader {
        version,
        opcode,
        request_id,
        len,
    })
}

/// Decodes one whole frame from a byte buffer, returning its header and a
/// view of the payload. Fails with [`ProtocolError::Truncated`] if the
/// buffer ends inside the announced payload.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), ProtocolError> {
    let header = decode_header(bytes)?;
    let end = HEADER_LEN + header.len as usize;
    if bytes.len() < end {
        return Err(ProtocolError::Truncated);
    }
    Ok((header, &bytes[HEADER_LEN..end]))
}

/// Reads exactly one frame from a blocking stream. The payload lands in
/// `payload` (cleared first, so the buffer is reusable across calls).
pub fn read_frame<R: Read>(
    stream: &mut R,
    payload: &mut Vec<u8>,
) -> Result<FrameHeader, ProtocolError> {
    let mut head = [0u8; HEADER_LEN];
    stream.read_exact(&mut head)?;
    let header = decode_header(&head)?;
    payload.clear();
    payload.resize(header.len as usize, 0);
    stream.read_exact(payload)?;
    Ok(header)
}

/// Writes one frame to a blocking stream.
pub fn write_frame<W: Write>(
    stream: &mut W,
    opcode: Opcode,
    request_id: u32,
    payload: &[u8],
) -> Result<(), ProtocolError> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame(opcode, request_id, payload, &mut buf);
    stream.write_all(&buf)?;
    stream.flush()?;
    Ok(())
}

// ---- payload codecs ----

/// A little bounds-checked big-endian reader over a payload slice.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ProtocolError::BadPayload("payload shorter than announced".into()))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::BadPayload(format!(
                "{} trailing bytes",
                self.bytes.len() - self.at
            )))
        }
    }
}

/// Version negotiation, the first frame of every connection: the client
/// names the version range it speaks; the worker acknowledges with the
/// highest version both sides share, or answers
/// [`ErrorCode::VersionMismatch`] and closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Oldest protocol version the client accepts.
    pub min_version: u8,
    /// Newest protocol version the client speaks.
    pub max_version: u8,
}

impl Hello {
    /// The hello this build sends.
    pub fn current() -> Hello {
        Hello {
            min_version: MIN_VERSION,
            max_version: VERSION,
        }
    }

    /// Serializes the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.min_version);
        out.push(self.max_version);
    }

    /// Deserializes the payload.
    pub fn decode(payload: &[u8]) -> Result<Hello, ProtocolError> {
        let mut r = Reader::new(payload);
        let hello = Hello {
            min_version: r.u8()?,
            max_version: r.u8()?,
        };
        r.finish()?;
        Ok(hello)
    }

    /// The version a worker speaking `MIN_VERSION..=VERSION` negotiates
    /// with this hello, if any overlap exists.
    pub fn negotiate(&self) -> Option<u8> {
        let high = self.max_version.min(VERSION);
        (high >= self.min_version && high >= MIN_VERSION).then_some(high)
    }
}

/// Accepts a [`Hello`] with the negotiated version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// The protocol version both sides will speak.
    pub version: u8,
}

impl HelloAck {
    /// Serializes the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.version);
    }

    /// Deserializes the payload.
    pub fn decode(payload: &[u8]) -> Result<HelloAck, ProtocolError> {
        let mut r = Reader::new(payload);
        let ack = HelloAck { version: r.u8()? };
        r.finish()?;
        Ok(ack)
    }
}

/// Instructs a worker to deterministically materialize its weight shard:
/// the same `(seed, shape)` inputs the engine's local
/// `WeightStore` uses, plus the `(worker, num_workers)` affinity pair that
/// selects which experts this worker owns (`expert % num_workers ==
/// worker`, the PR-4 shard map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadShard {
    /// Weight-generation seed (must match the engine's).
    pub seed: u64,
    /// This worker's index in the deployment.
    pub worker: u16,
    /// Total workers in the deployment.
    pub num_workers: u16,
    /// MoE layers of the model.
    pub layers: u16,
    /// Routed experts per layer.
    pub routed_experts: u16,
    /// Hidden (model) dimension of each routed expert.
    pub hidden: u32,
    /// Intermediate dimension of each routed expert.
    pub inter: u32,
    /// Weight-budget bytes of the worker's store.
    pub weight_budget_bytes: u64,
    /// Kernel backend the worker must execute with, as a
    /// `KernelBackendKind` name (`auto`/`scalar`/`portable`/`avx2`). The
    /// engine pins this so remote outputs are bit-identical to local ones.
    pub backend: u8,
}

impl LoadShard {
    /// Serializes the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seed.to_be_bytes());
        out.extend_from_slice(&self.worker.to_be_bytes());
        out.extend_from_slice(&self.num_workers.to_be_bytes());
        out.extend_from_slice(&self.layers.to_be_bytes());
        out.extend_from_slice(&self.routed_experts.to_be_bytes());
        out.extend_from_slice(&self.hidden.to_be_bytes());
        out.extend_from_slice(&self.inter.to_be_bytes());
        out.extend_from_slice(&self.weight_budget_bytes.to_be_bytes());
        out.push(self.backend);
    }

    /// Deserializes the payload.
    pub fn decode(payload: &[u8]) -> Result<LoadShard, ProtocolError> {
        let mut r = Reader::new(payload);
        let spec = LoadShard {
            seed: r.u64()?,
            worker: r.u16()?,
            num_workers: r.u16()?,
            layers: r.u16()?,
            routed_experts: r.u16()?,
            hidden: r.u32()?,
            inter: r.u32()?,
            weight_budget_bytes: r.u64()?,
            backend: r.u8()?,
        };
        r.finish()?;
        if spec.num_workers == 0 {
            return Err(ProtocolError::BadPayload("num_workers must be >= 1".into()));
        }
        if spec.worker >= spec.num_workers {
            return Err(ProtocolError::BadPayload(format!(
                "worker {} out of range for {} workers",
                spec.worker, spec.num_workers
            )));
        }
        if spec.hidden == 0 || spec.inter == 0 {
            return Err(ProtocolError::BadPayload("zero expert dimension".into()));
        }
        Ok(spec)
    }
}

/// Acknowledges a [`LoadShard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadShardAck {
    /// Experts per layer this worker owns under the shard map.
    pub experts_owned: u32,
}

impl LoadShardAck {
    /// Serializes the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.experts_owned.to_be_bytes());
    }

    /// Deserializes the payload.
    pub fn decode(payload: &[u8]) -> Result<LoadShardAck, ProtocolError> {
        let mut r = Reader::new(payload);
        let ack = LoadShardAck {
            experts_owned: r.u32()?,
        };
        r.finish()?;
        Ok(ack)
    }
}

/// One expert's gathered token batch: the engine gathers the expert's
/// routed tokens into a contiguous `tokens x hidden` tensor (expert-major,
/// exactly like the local batched path) and ships it to the expert's
/// shard-affine worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteBatch {
    /// The MoE layer of the expert.
    pub layer: u16,
    /// The expert to execute.
    pub expert: u16,
    /// Tokens in the batch.
    pub tokens: u32,
    /// Hidden dimension (redundant with [`LoadShard`]; cross-checked).
    pub hidden: u32,
    /// The batch, `tokens x hidden` row-major.
    pub data: Vec<f32>,
}

impl ExecuteBatch {
    /// Serializes the header fields and the tensor (IEEE-754 bit patterns,
    /// big-endian — bit-exact on the wire).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.layer.to_be_bytes());
        out.extend_from_slice(&self.expert.to_be_bytes());
        out.extend_from_slice(&self.tokens.to_be_bytes());
        out.extend_from_slice(&self.hidden.to_be_bytes());
        out.reserve(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_bits().to_be_bytes());
        }
    }

    /// Deserializes the payload, checking the tensor length against the
    /// announced `tokens * hidden`.
    pub fn decode(payload: &[u8]) -> Result<ExecuteBatch, ProtocolError> {
        let mut r = Reader::new(payload);
        let layer = r.u16()?;
        let expert = r.u16()?;
        let tokens = r.u32()?;
        let hidden = r.u32()?;
        let data = decode_tensor(&mut r, tokens, hidden)?;
        r.finish()?;
        Ok(ExecuteBatch {
            layer,
            expert,
            tokens,
            hidden,
            data,
        })
    }
}

/// The outputs of an [`ExecuteBatch`], same shape as the request tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteBatchAck {
    /// Tokens in the batch (echoed).
    pub tokens: u32,
    /// Hidden dimension (echoed).
    pub hidden: u32,
    /// The expert outputs, `tokens x hidden` row-major.
    pub data: Vec<f32>,
}

impl ExecuteBatchAck {
    /// Serializes the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.tokens.to_be_bytes());
        out.extend_from_slice(&self.hidden.to_be_bytes());
        out.reserve(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_bits().to_be_bytes());
        }
    }

    /// Deserializes the payload.
    pub fn decode(payload: &[u8]) -> Result<ExecuteBatchAck, ProtocolError> {
        let mut r = Reader::new(payload);
        let tokens = r.u32()?;
        let hidden = r.u32()?;
        let data = decode_tensor(&mut r, tokens, hidden)?;
        r.finish()?;
        Ok(ExecuteBatchAck {
            tokens,
            hidden,
            data,
        })
    }
}

/// Reads a `tokens x hidden` f32 tensor, validating the element count
/// against the payload before allocating.
fn decode_tensor(r: &mut Reader<'_>, tokens: u32, hidden: u32) -> Result<Vec<f32>, ProtocolError> {
    let elems = (tokens as u64)
        .checked_mul(hidden as u64)
        .filter(|&n| n.checked_mul(4).is_some_and(|b| b <= MAX_PAYLOAD as u64))
        .ok_or_else(|| ProtocolError::BadPayload("tensor dimensions overflow".into()))?
        as usize;
    let bytes = r.take(elems * 4)?;
    let mut data = Vec::with_capacity(elems);
    for chunk in bytes.chunks_exact(4) {
        data.push(f32::from_bits(u32::from_be_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3],
        ])));
    }
    Ok(data)
}

/// Answers a [`Opcode::Heartbeat`] with the worker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatAck {
    /// Expert batches executed on this connection since [`LoadShard`].
    pub executed: u64,
    /// Requests currently being processed (always 0 on the sequential
    /// reference worker; reserved for concurrent implementations).
    pub inflight: u32,
}

impl HeartbeatAck {
    /// Serializes the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.executed.to_be_bytes());
        out.extend_from_slice(&self.inflight.to_be_bytes());
    }

    /// Deserializes the payload.
    pub fn decode(payload: &[u8]) -> Result<HeartbeatAck, ProtocolError> {
        let mut r = Reader::new(payload);
        let ack = HeartbeatAck {
            executed: r.u64()?,
            inflight: r.u32()?,
        };
        r.finish()?;
        Ok(ack)
    }
}

/// An error reply: a [`ErrorCode`] and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Why the request failed.
    pub code: ErrorCode,
    /// Worker-authored description.
    pub message: String,
}

impl ErrorReply {
    /// Creates an error reply.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorReply {
        ErrorReply {
            code,
            message: message.into(),
        }
    }

    /// Serializes the payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.code as u16).to_be_bytes());
        out.extend_from_slice(self.message.as_bytes());
    }

    /// Deserializes the payload.
    pub fn decode(payload: &[u8]) -> Result<ErrorReply, ProtocolError> {
        let mut r = Reader::new(payload);
        let raw = r.u16()?;
        let code = ErrorCode::from_u16(raw)
            .ok_or_else(|| ProtocolError::BadPayload(format!("unknown error code {raw}")))?;
        let message = String::from_utf8_lossy(r.take(payload.len() - 2)?).into_owned();
        Ok(ErrorReply { code, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        encode_frame(Opcode::ExecuteBatch, 0xDEAD_BEEF, &[1, 2, 3], &mut wire);
        let (header, payload) = decode_frame(&wire).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.opcode, Opcode::ExecuteBatch);
        assert_eq!(header.request_id, 0xDEAD_BEEF);
        assert_eq!(header.len, 3);
        assert_eq!(payload, &[1, 2, 3]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = Vec::new();
        encode_frame(Opcode::Heartbeat, 1, &[], &mut wire);
        wire[0] = 0x00;
        assert!(matches!(
            decode_frame(&wire),
            Err(ProtocolError::BadMagic(_))
        ));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut wire = Vec::new();
        encode_frame(Opcode::Heartbeat, 1, &[], &mut wire);
        wire[4] = 99;
        assert!(matches!(
            decode_frame(&wire),
            Err(ProtocolError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut wire = Vec::new();
        encode_frame(Opcode::Heartbeat, 1, &[], &mut wire);
        wire[5] = 0x7E;
        assert!(matches!(
            decode_frame(&wire),
            Err(ProtocolError::UnknownOpcode(0x7E))
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        let mut wire = Vec::new();
        encode_frame(Opcode::ExecuteBatch, 1, &[9; 16], &mut wire);
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 7] {
            assert!(
                matches!(decode_frame(&wire[..cut]), Err(ProtocolError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut wire = Vec::new();
        encode_frame(Opcode::ExecuteBatch, 1, &[], &mut wire);
        wire[10..14].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert!(matches!(
            decode_header(&wire),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn read_frame_maps_eof_to_truncated() {
        let mut wire = Vec::new();
        encode_frame(Opcode::ExecuteBatch, 1, &[5; 32], &mut wire);
        wire.truncate(HEADER_LEN + 10);
        let mut cursor = io::Cursor::new(wire);
        let mut payload = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut payload),
            Err(ProtocolError::Truncated)
        ));
    }

    #[test]
    fn hello_negotiates_highest_shared_version() {
        assert_eq!(Hello::current().negotiate(), Some(VERSION));
        assert_eq!(
            Hello {
                min_version: VERSION,
                max_version: 200
            }
            .negotiate(),
            Some(VERSION)
        );
        assert_eq!(
            Hello {
                min_version: VERSION + 1,
                max_version: VERSION + 5
            }
            .negotiate(),
            None
        );
    }

    #[test]
    fn payloads_round_trip() {
        let mut buf = Vec::new();
        let hello = Hello::current();
        hello.encode(&mut buf);
        assert_eq!(Hello::decode(&buf).unwrap(), hello);

        buf.clear();
        let spec = LoadShard {
            seed: 7,
            worker: 1,
            num_workers: 4,
            layers: 4,
            routed_experts: 8,
            hidden: 64,
            inter: 96,
            weight_budget_bytes: 1 << 20,
            backend: 1,
        };
        spec.encode(&mut buf);
        assert_eq!(LoadShard::decode(&buf).unwrap(), spec);

        buf.clear();
        let batch = ExecuteBatch {
            layer: 2,
            expert: 5,
            tokens: 3,
            hidden: 2,
            data: vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE, 1e30, -0.0],
        };
        batch.encode(&mut buf);
        let back = ExecuteBatch::decode(&buf).unwrap();
        assert_eq!(back, batch);
        // Bit-exactness, not just value equality.
        for (a, b) in back.data.iter().zip(batch.data.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        buf.clear();
        let err = ErrorReply::new(ErrorCode::NotMyShard, "expert 3 lives on worker 1");
        err.encode(&mut buf);
        assert_eq!(ErrorReply::decode(&buf).unwrap(), err);
    }

    #[test]
    fn inconsistent_tensor_dimensions_rejected() {
        let mut buf = Vec::new();
        let batch = ExecuteBatch {
            layer: 0,
            expert: 0,
            tokens: 2,
            hidden: 2,
            data: vec![0.0; 4],
        };
        batch.encode(&mut buf);
        // Announce more tokens than the tensor carries.
        buf[4..8].copy_from_slice(&3u32.to_be_bytes());
        assert!(matches!(
            ExecuteBatch::decode(&buf),
            Err(ProtocolError::BadPayload(_))
        ));
        // Dimension overflow must not allocate.
        buf[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        buf[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            ExecuteBatch::decode(&buf),
            Err(ProtocolError::BadPayload(_))
        ));
    }

    #[test]
    fn load_shard_validates_affinity() {
        let mut buf = Vec::new();
        LoadShard {
            seed: 0,
            worker: 4,
            num_workers: 4,
            layers: 1,
            routed_experts: 8,
            hidden: 8,
            inter: 8,
            weight_budget_bytes: 1024,
            backend: 0,
        }
        .encode(&mut buf);
        assert!(matches!(
            LoadShard::decode(&buf),
            Err(ProtocolError::BadPayload(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        Hello::current().encode(&mut buf);
        buf.push(0xFF);
        assert!(matches!(
            Hello::decode(&buf),
            Err(ProtocolError::BadPayload(_))
        ));
    }
}
