//! # hybrimoe-fault
//!
//! Deterministic, seeded fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seed plus a set of rate knobs. Every injection
//! site in the stack derives its own [`FaultStream`] from the plan via a
//! stable site label ([`FaultPlan::stream`]), so the decision sequence at
//! each site depends only on `(seed, site, call index)` — never on thread
//! interleaving or wall-clock time. Two runs with the same plan make the
//! same injection decisions at every site, which is what lets the chaos
//! soak (`chaos_bench`) emit bit-identical outcome counts from the same
//! seed.
//!
//! Rates are expressed in parts-per-million ([`FaultRates`]); a rate of 0
//! disables that fault, and the all-zero [`FaultPlan::off`] plan is the
//! default everywhere. Sites guard their hooks with
//! [`FaultPlan::is_off`] so the disabled path costs one predictable
//! branch.
//!
//! The knobs cover every boundary of the serving stack:
//!
//! | knob | site |
//! |---|---|
//! | `conn_drop_ppm` | worker drops the connection instead of replying |
//! | `reply_delay_ppm` / `reply_delay_ms` | worker stalls before replying |
//! | `corrupt_ppm` | worker flips one byte of a reply frame |
//! | `truncate_ppm` | worker writes a partial reply frame, then drops |
//! | `fail_after` | worker dies after N executes (crash-only legacy knob) |
//! | `spike_ppm` / `spike_ms` | engine step reports an inflated latency |
//! | `panic_ppm` | engine step panics |
//! | `hangup_ppm` | client drops its connection mid-stream |
//! | `slow_read_ppm` / `slow_read_ms` | client stalls between chunk reads |
//!
//! ## Example
//!
//! ```
//! use hybrimoe_fault::FaultPlan;
//!
//! let plan = FaultPlan::parse_spec("seed=42,panic_ppm=1000,spike_ppm=5000,spike_ms=40")
//!     .unwrap();
//! assert!(!plan.is_off());
//! let mut a = plan.stream("engine.step");
//! let mut b = plan.stream("engine.step");
//! // Same seed + same site => identical decision sequences.
//! for _ in 0..100 {
//!     assert_eq!(a.roll_ppm(1000), b.roll_ppm(1000));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// One million: the denominator of every injection rate.
pub const PPM: u64 = 1_000_000;

/// Per-site injection rates, in parts per million, plus the magnitudes
/// of the faults that have one. All-zero means no injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Worker drops the connection instead of writing a reply.
    pub conn_drop_ppm: u32,
    /// Worker sleeps [`FaultRates::reply_delay_ms`] before replying.
    pub reply_delay_ppm: u32,
    /// Length of an injected reply delay, in milliseconds.
    pub reply_delay_ms: u64,
    /// Worker flips one byte of the encoded reply frame.
    pub corrupt_ppm: u32,
    /// Worker writes only a prefix of the reply frame, then drops.
    pub truncate_ppm: u32,
    /// Worker stops accepting work after this many executed batches
    /// (the legacy crash-only `--fail-after` knob, folded in).
    pub fail_after: Option<u64>,
    /// Engine step reports a latency inflated by [`FaultRates::spike_ms`].
    pub spike_ppm: u32,
    /// Size of an injected engine latency spike, in milliseconds.
    pub spike_ms: u64,
    /// Engine step panics.
    pub panic_ppm: u32,
    /// Client drops its connection mid-stream.
    pub hangup_ppm: u32,
    /// Client stalls [`FaultRates::slow_read_ms`] between chunk reads.
    pub slow_read_ppm: u32,
    /// Length of an injected client read stall, in milliseconds.
    pub slow_read_ms: u64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            conn_drop_ppm: 0,
            reply_delay_ppm: 0,
            reply_delay_ms: 20,
            corrupt_ppm: 0,
            truncate_ppm: 0,
            fail_after: None,
            spike_ppm: 0,
            spike_ms: 50,
            panic_ppm: 0,
            hangup_ppm: 0,
            slow_read_ppm: 0,
            slow_read_ms: 20,
        }
    }
}

impl FaultRates {
    /// Whether every rate is zero (magnitudes alone inject nothing).
    pub fn all_zero(&self) -> bool {
        self.conn_drop_ppm == 0
            && self.reply_delay_ppm == 0
            && self.corrupt_ppm == 0
            && self.truncate_ppm == 0
            && self.fail_after.is_none()
            && self.spike_ppm == 0
            && self.panic_ppm == 0
            && self.hangup_ppm == 0
            && self.slow_read_ppm == 0
    }
}

/// A seeded fault-injection plan: the single source of truth for what a
/// chaos run injects and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed every per-site stream derives from.
    pub seed: u64,
    /// The injection rates and magnitudes.
    pub rates: FaultRates,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::off()
    }
}

impl FaultPlan {
    /// The plan that injects nothing (the default everywhere).
    pub fn off() -> Self {
        FaultPlan {
            seed: 0,
            rates: FaultRates::default(),
        }
    }

    /// Whether this plan injects nothing. Sites check this once and skip
    /// their hooks entirely, so a disabled plan costs one predictable
    /// branch per site.
    pub fn is_off(&self) -> bool {
        self.rates.all_zero()
    }

    /// Derives the deterministic decision stream for one injection site.
    ///
    /// The label names the site (`"engine.step"`, `"worker.conn.3"`, …);
    /// the stream's sequence depends only on `(seed, label)`, so sites on
    /// different threads never perturb each other's decisions.
    pub fn stream(&self, site: &str) -> FaultStream {
        FaultStream::new(self.seed ^ fnv1a(site))
    }

    /// Parses a `key=value,key=value` spec into a plan.
    ///
    /// Keys are `seed` plus every knob of the table in the crate docs:
    /// `conn_drop_ppm`, `reply_delay_ppm`, `reply_delay_ms`,
    /// `corrupt_ppm`, `truncate_ppm`, `fail_after`, `spike_ppm`,
    /// `spike_ms`, `panic_ppm`, `hangup_ppm`, `slow_read_ppm`,
    /// `slow_read_ms`. Unknown keys and unparsable values are errors.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::off();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let num = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("fault spec {what} value {value:?} is not a number"))
            };
            let ppm = |what: &str| -> Result<u32, String> {
                let v = num(what)?;
                if v > PPM {
                    return Err(format!("fault spec {what}={v} exceeds {PPM} ppm"));
                }
                Ok(v as u32)
            };
            match key {
                "seed" => plan.seed = num(key)?,
                "conn_drop_ppm" => plan.rates.conn_drop_ppm = ppm(key)?,
                "reply_delay_ppm" => plan.rates.reply_delay_ppm = ppm(key)?,
                "reply_delay_ms" => plan.rates.reply_delay_ms = num(key)?,
                "corrupt_ppm" => plan.rates.corrupt_ppm = ppm(key)?,
                "truncate_ppm" => plan.rates.truncate_ppm = ppm(key)?,
                "fail_after" => plan.rates.fail_after = Some(num(key)?),
                "spike_ppm" => plan.rates.spike_ppm = ppm(key)?,
                "spike_ms" => plan.rates.spike_ms = num(key)?,
                "panic_ppm" => plan.rates.panic_ppm = ppm(key)?,
                "hangup_ppm" => plan.rates.hangup_ppm = ppm(key)?,
                "slow_read_ppm" => plan.rates.slow_read_ppm = ppm(key)?,
                "slow_read_ms" => plan.rates.slow_read_ms = num(key)?,
                other => return Err(format!("fault spec has unknown key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// FNV-1a over the site label: cheap, stable across runs and platforms.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One injection site's deterministic decision stream (SplitMix64).
///
/// Every call advances the stream exactly one state, so the sequence of
/// decisions depends only on the seed and the call index — the property
/// that makes same-seed chaos runs bit-reproducible.
#[derive(Debug, Clone)]
pub struct FaultStream {
    state: u64,
}

impl FaultStream {
    /// A stream over `seed` (normally via [`FaultPlan::stream`]).
    pub fn new(seed: u64) -> Self {
        FaultStream { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "FaultStream::below(0)");
        self.next_u64() % n
    }

    /// One Bernoulli trial at `ppm` parts per million. Always advances
    /// the stream, even at rate 0, so interleaving rolls for different
    /// faults at one site stays aligned across runs.
    pub fn roll_ppm(&mut self, ppm: u32) -> bool {
        self.below(PPM) < u64::from(ppm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_off_and_default() {
        assert!(FaultPlan::off().is_off());
        assert_eq!(FaultPlan::default(), FaultPlan::off());
        assert!(FaultPlan::parse_spec("").unwrap().is_off());
        // A plan with only a seed and magnitudes still injects nothing.
        let plan = FaultPlan::parse_spec("seed=7,spike_ms=100").unwrap();
        assert!(plan.is_off());
        // fail_after alone turns the plan on (it is a fault, not a rate).
        assert!(!FaultPlan::parse_spec("fail_after=3").unwrap().is_off());
    }

    #[test]
    fn spec_round_trips_every_knob() {
        let plan = FaultPlan::parse_spec(
            "seed=42,conn_drop_ppm=1,reply_delay_ppm=2,reply_delay_ms=3,corrupt_ppm=4,\
             truncate_ppm=5,fail_after=6,spike_ppm=7,spike_ms=8,panic_ppm=9,hangup_ppm=10,\
             slow_read_ppm=11,slow_read_ms=12",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rates.conn_drop_ppm, 1);
        assert_eq!(plan.rates.reply_delay_ppm, 2);
        assert_eq!(plan.rates.reply_delay_ms, 3);
        assert_eq!(plan.rates.corrupt_ppm, 4);
        assert_eq!(plan.rates.truncate_ppm, 5);
        assert_eq!(plan.rates.fail_after, Some(6));
        assert_eq!(plan.rates.spike_ppm, 7);
        assert_eq!(plan.rates.spike_ms, 8);
        assert_eq!(plan.rates.panic_ppm, 9);
        assert_eq!(plan.rates.hangup_ppm, 10);
        assert_eq!(plan.rates.slow_read_ppm, 11);
        assert_eq!(plan.rates.slow_read_ms, 12);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::parse_spec("banana").is_err());
        assert!(FaultPlan::parse_spec("seed=banana").is_err());
        assert!(FaultPlan::parse_spec("no_such_knob=1").is_err());
        assert!(FaultPlan::parse_spec("panic_ppm=2000000").is_err());
    }

    #[test]
    fn streams_are_deterministic_per_site_and_independent_across_sites() {
        let plan = FaultPlan::parse_spec("seed=99,panic_ppm=300000").unwrap();
        let a: Vec<u64> = {
            let mut s = plan.stream("engine.step");
            (0..64).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = plan.stream("engine.step");
            (0..64).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b, "same site must replay the same sequence");
        let c: Vec<u64> = {
            let mut s = plan.stream("worker.conn.0");
            (0..64).map(|_| s.next_u64()).collect()
        };
        assert_ne!(a, c, "distinct sites draw distinct sequences");
    }

    #[test]
    fn roll_rates_are_plausible_and_stream_advancing() {
        let plan = FaultPlan::parse_spec("seed=5").unwrap();
        let mut s = plan.stream("rates");
        let hits = (0..10_000).filter(|_| s.roll_ppm(250_000)).count();
        // 25% +- a wide margin; this is a sanity bound, not a statistics test.
        assert!((1_500..=3_500).contains(&hits), "hits {hits}");
        // Rate-0 rolls never fire but still advance the stream.
        let mut x = plan.stream("advance");
        let mut y = plan.stream("advance");
        assert!(!x.roll_ppm(0));
        y.next_u64();
        assert_eq!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn plan_serializes_round_trip() {
        // The plan rides inside EngineConfig, which must stay
        // serde-round-trippable.
        let plan = FaultPlan::parse_spec("seed=42,spike_ppm=100,fail_after=2").unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
