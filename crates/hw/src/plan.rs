//! Dependency-aware plan execution.
//!
//! A scheduler produces an ordered list of operations per device (compute on
//! CPU/GPU, transfers on PCIe) with cross-device dependencies — most
//! importantly "a GPU compute of an uncached expert depends on its PCIe
//! transfer". The [`PlanExecutor`] replays such a plan on the device
//! timelines and yields the realized start/end time of every op plus the
//! overall makespan. This is the "ground truth" executor; the scheduler's
//! own internal simulation (in `hybrimoe-sched`) must agree with it.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{device_count, devices, Device, SimDuration, SimTime, Timeline, TimelineSet};

/// Identifier of an operation within one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// One operation of a schedule plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Unique id within the plan.
    pub id: OpId,
    /// Device the op occupies.
    pub device: Device,
    /// How long the op takes.
    pub duration: SimDuration,
    /// Ops that must finish before this op may start (any device).
    pub deps: Vec<OpId>,
    /// Human-readable label for Gantt output.
    pub label: String,
}

impl Op {
    /// Convenience constructor for an op without dependencies.
    pub fn new(id: u32, device: Device, duration: SimDuration, label: impl Into<String>) -> Self {
        Op {
            id: OpId(id),
            device,
            duration,
            deps: Vec::new(),
            label: label.into(),
        }
    }

    /// Adds a dependency and returns the op (builder style).
    pub fn after(mut self, dep: OpId) -> Self {
        self.deps.push(dep);
        self
    }
}

/// A realized operation with its committed times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutedOp {
    /// The op id.
    pub id: OpId,
    /// Device it ran on.
    pub device: Device,
    /// Committed start time.
    pub start: SimTime,
    /// Committed end time.
    pub end: SimTime,
    /// Label copied from the plan.
    pub label: String,
}

/// The result of executing a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutedPlan {
    /// Realized ops in commit order.
    pub ops: Vec<ExecutedOp>,
    /// The three device timelines after execution.
    pub timelines: TimelineSet,
    /// Time at which the last op finishes, relative to the plan start.
    pub makespan: SimDuration,
}

impl ExecutedPlan {
    /// The realized end time of op `id`, if it was executed.
    pub fn end_of(&self, id: OpId) -> Option<SimTime> {
        self.ops.iter().find(|o| o.id == id).map(|o| o.end)
    }

    /// The realized start time of op `id`, if it was executed.
    pub fn start_of(&self, id: OpId) -> Option<SimTime> {
        self.ops.iter().find(|o| o.id == id).map(|o| o.start)
    }
}

/// Errors from [`PlanExecutor::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Two ops share the same [`OpId`].
    DuplicateOpId(OpId),
    /// An op depends on an id that is not part of the plan.
    UnknownDependency {
        /// The op with the bad dependency.
        op: OpId,
        /// The missing dependency id.
        missing: OpId,
    },
    /// The per-device op orders and the dependencies cannot all be
    /// satisfied (a cycle, e.g. op A on CPU before B, but A depends on B's
    /// GPU successor which depends on B).
    DependencyCycle,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::DuplicateOpId(id) => write!(f, "duplicate op id {id}"),
            PlanError::UnknownDependency { op, missing } => {
                write!(f, "{op} depends on unknown {missing}")
            }
            PlanError::DependencyCycle => write!(f, "dependency cycle in plan"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Replays ordered per-device op lists on fresh timelines.
///
/// Ops run on each device **in the order given**; an op additionally waits
/// for all of its dependencies. Among devices whose next op is ready, the op
/// with the earliest feasible start time is committed first (ties broken by
/// canonical device order: CPU, then GPUs, then PCIe lanes), which makes
/// the executor deterministic.
///
/// The executor sizes its timelines for one GPU by default and grows to
/// cover any higher GPU index appearing in the ops; [`PlanExecutor::with_gpus`]
/// forces a fixed device count so the resulting [`TimelineSet`] shape does
/// not depend on which devices a particular plan happens to use.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{Device, Op, OpId, PlanExecutor, SimDuration};
///
/// // Transfer expert C (3us on PCIe), then compute it on the GPU (1us).
/// let xfer = Op::new(0, Device::pcie(0), SimDuration::from_micros(3), "load C");
/// let comp = Op::new(1, Device::gpu(0), SimDuration::from_micros(1), "C").after(OpId(0));
/// let executed = PlanExecutor::new().execute(vec![xfer, comp])?;
/// assert_eq!(executed.makespan, SimDuration::from_micros(4));
/// # Ok::<(), hybrimoe_hw::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlanExecutor {
    start: SimTime,
    num_gpus: usize,
}

impl Default for PlanExecutor {
    fn default() -> Self {
        PlanExecutor::new()
    }
}

impl PlanExecutor {
    /// Creates an executor whose timelines start at the clock origin.
    pub fn new() -> Self {
        PlanExecutor {
            start: SimTime::ZERO,
            num_gpus: 1,
        }
    }

    /// Creates an executor whose timelines start at `start`; the reported
    /// makespan stays relative to `start`.
    pub fn starting_at(start: SimTime) -> Self {
        PlanExecutor { start, num_gpus: 1 }
    }

    /// Forces the executor to model at least `num_gpus` GPUs (and their
    /// PCIe lanes), so the executed timeline shape is stable across plans.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn with_gpus(mut self, num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "a platform needs at least one GPU");
        self.num_gpus = num_gpus;
        self
    }

    /// Executes `ops` and returns the realized timeline.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if op ids are duplicated, a dependency names an
    /// unknown op, or the dependencies combined with per-device ordering form
    /// a cycle.
    pub fn execute(&self, ops: Vec<Op>) -> Result<ExecutedPlan, PlanError> {
        let mut known: HashMap<OpId, ()> = HashMap::with_capacity(ops.len());
        for op in &ops {
            if known.insert(op.id, ()).is_some() {
                return Err(PlanError::DuplicateOpId(op.id));
            }
        }
        for op in &ops {
            for dep in &op.deps {
                if !known.contains_key(dep) {
                    return Err(PlanError::UnknownDependency {
                        op: op.id,
                        missing: *dep,
                    });
                }
            }
        }

        // Grow to cover every GPU index the ops reference.
        let num_gpus = ops
            .iter()
            .filter_map(|op| op.device.gpu_id())
            .map(|g| g.0 as usize + 1)
            .fold(self.num_gpus, usize::max);
        let order: Vec<Device> = devices(num_gpus).collect();

        // Per-device FIFO queues preserving the given order.
        let mut queues: Vec<Vec<&Op>> = vec![Vec::new(); device_count(num_gpus)];
        for op in &ops {
            queues[op.device.ordinal(num_gpus)].push(op);
        }
        // Reverse so pop() takes from the front.
        for q in &mut queues {
            q.reverse();
        }

        let mut timelines = TimelineSet::starting_at_with_gpus(num_gpus, self.start);
        let mut finished: HashMap<OpId, SimTime> = HashMap::with_capacity(ops.len());
        let mut executed = Vec::with_capacity(ops.len());
        let total = ops.len();

        while executed.len() < total {
            // Among device heads whose deps are all finished, pick the one
            // with the earliest feasible start (ties: canonical device
            // order).
            let mut best: Option<(SimTime, usize)> = None;
            for (di, q) in queues.iter().enumerate() {
                let Some(head) = q.last() else { continue };
                let Some(release) = deps_ready(head, &finished, self.start) else {
                    continue;
                };
                let tl: &Timeline = timelines.get(order[di]);
                let (start, _) = tl.peek(release, head.duration);
                if best.is_none_or(|(bs, _)| start < bs) {
                    best = Some((start, di));
                }
            }
            let Some((_, di)) = best else {
                return Err(PlanError::DependencyCycle);
            };
            let op = queues[di].pop().expect("head existed");
            let release = deps_ready(op, &finished, self.start).expect("checked ready");
            let (start, end) =
                timelines
                    .get_mut(op.device)
                    .push(release, op.duration, op.label.clone());
            finished.insert(op.id, end);
            executed.push(ExecutedOp {
                id: op.id,
                device: op.device,
                start,
                end,
                label: op.label.clone(),
            });
        }

        let makespan = timelines.finish_time().elapsed_since(self.start);
        Ok(ExecutedPlan {
            ops: executed,
            timelines,
            makespan,
        })
    }
}

/// If all deps of `op` are finished, the earliest release time; else `None`.
fn deps_ready(op: &Op, finished: &HashMap<OpId, SimTime>, start: SimTime) -> Option<SimTime> {
    let mut release = start;
    for dep in &op.deps {
        match finished.get(dep) {
            Some(&end) => release = release.max(end),
            None => return None,
        }
    }
    Some(release)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn sequential_same_device() {
        let ops = vec![
            Op::new(0, Device::Cpu, us(2), "a"),
            Op::new(1, Device::Cpu, us(3), "b"),
        ];
        let ex = PlanExecutor::new().execute(ops).unwrap();
        assert_eq!(ex.makespan, us(5));
        assert_eq!(ex.start_of(OpId(1)).unwrap(), SimTime::ZERO + us(2));
    }

    #[test]
    fn parallel_devices_overlap() {
        let ops = vec![
            Op::new(0, Device::Cpu, us(4), "cpu"),
            Op::new(1, Device::gpu(0), us(3), "gpu"),
            Op::new(2, Device::pcie(0), us(2), "xfer"),
        ];
        let ex = PlanExecutor::new().execute(ops).unwrap();
        assert_eq!(ex.makespan, us(4));
        for op in &ex.ops {
            assert_eq!(op.start, SimTime::ZERO);
        }
    }

    #[test]
    fn transfer_gates_gpu_compute() {
        let ops = vec![
            Op::new(0, Device::pcie(0), us(3), "load C"),
            Op::new(1, Device::gpu(0), us(1), "D"),
            Op::new(2, Device::gpu(0), us(1), "C").after(OpId(0)),
        ];
        let ex = PlanExecutor::new().execute(ops).unwrap();
        // GPU runs D first (1us), then must wait for the transfer to finish
        // at t=3 before computing C.
        assert_eq!(ex.start_of(OpId(2)).unwrap(), SimTime::from_nanos(3_000));
        assert_eq!(ex.makespan, us(4));
    }

    #[test]
    fn fig5_like_plan_makespan() {
        // Paper Fig. 5: CPU queue A:1,B:1,C:3 (uncached), GPU cached D:4,E:1,
        // transfer=3. Chosen plan: CPU computes A,B then E; GPU computes D
        // then C (after transfer); PCIe loads C.
        let ops = vec![
            Op::new(0, Device::Cpu, us(1), "A"),
            Op::new(1, Device::Cpu, us(1), "B"),
            Op::new(2, Device::Cpu, us(1), "E"),
            Op::new(3, Device::gpu(0), us(1), "D"),
            Op::new(4, Device::pcie(0), us(3), "load C"),
            Op::new(5, Device::gpu(0), us(1), "C").after(OpId(4)),
        ];
        let ex = PlanExecutor::new().execute(ops).unwrap();
        assert_eq!(ex.makespan, us(4));
    }

    #[test]
    fn duplicate_id_rejected() {
        let ops = vec![
            Op::new(7, Device::Cpu, us(1), "a"),
            Op::new(7, Device::gpu(0), us(1), "b"),
        ];
        assert_eq!(
            PlanExecutor::new().execute(ops),
            Err(PlanError::DuplicateOpId(OpId(7)))
        );
    }

    #[test]
    fn unknown_dependency_rejected() {
        let ops = vec![Op::new(0, Device::Cpu, us(1), "a").after(OpId(99))];
        assert!(matches!(
            PlanExecutor::new().execute(ops),
            Err(PlanError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        // Two CPU ops in order a, b — but a depends on b.
        let ops = vec![
            Op::new(0, Device::Cpu, us(1), "a").after(OpId(1)),
            Op::new(1, Device::Cpu, us(1), "b"),
        ];
        assert_eq!(
            PlanExecutor::new().execute(ops),
            Err(PlanError::DependencyCycle)
        );
    }

    #[test]
    fn starting_at_shifts_times_not_makespan() {
        let t0 = SimTime::from_nanos(1_000_000);
        let ops = vec![Op::new(0, Device::gpu(0), us(2), "g")];
        let ex = PlanExecutor::starting_at(t0).execute(ops).unwrap();
        assert_eq!(ex.start_of(OpId(0)).unwrap(), t0);
        assert_eq!(ex.makespan, us(2));
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = PlanError::DuplicateOpId(OpId(3));
        assert!(!e.to_string().is_empty());
        let e = PlanError::DependencyCycle;
        assert!(!e.to_string().is_empty());
    }
}
