//! # hybrimoe-hw
//!
//! Discrete-event hardware model for hybrid CPU-GPU Mixture-of-Experts
//! inference, the substrate on which the HybriMoE scheduler, prefetcher and
//! cache policies are evaluated.
//!
//! The model has three kinds of resource, mirroring the platform of the
//! paper (an NVIDIA A6000 GPU, a 10-core Xeon CPU and the PCIe link
//! between them) and generalizing it to `N` identical GPUs:
//!
//! * [`Device::Cpu`] — computes experts out of host memory; time grows
//!   linearly with the token workload and the first expert of a burst pays a
//!   cold-start penalty (paper Fig. 3(e)).
//! * [`Device::Gpu`] — one of `N` GPUs, each computing experts resident in
//!   its cache shard; time is nearly flat in the token workload (paper
//!   Fig. 3(f)).
//! * [`Device::Pcie`] — the PCIe lane feeding one GPU, moving expert
//!   weights from host to that GPU's memory at a fixed per-expert cost
//!   (paper §III, Opportunity 2).
//!
//! Everything is deterministic: times are integer nanoseconds
//! ([`SimDuration`]), so identical inputs produce bit-identical schedules.
//!
//! ## Example
//!
//! ```
//! use hybrimoe_hw::{AffineCostModel, CostModel, ExpertProfile, Platform};
//!
//! let platform = Platform::a6000_xeon10();
//! let model = AffineCostModel::from_platform(&platform);
//! let expert = ExpertProfile::new(90_000_000, 350_000_000); // ~Mixtral expert
//! // A single decode token is cheaper to compute on the CPU than to move:
//! let cpu = model.cpu_compute(&expert, 1, true);
//! let load = model.transfer(&expert);
//! assert!(cpu < load);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod cost;
mod device;
mod gantt;
mod plan;
mod platform;
mod remote;
mod time;
mod timeline;

pub use calibration::CalibrationProfile;
pub use cost::{AffineCostModel, CostModel, ExpertProfile, UnitCostModel};
pub use device::{device_count, devices, Device, GpuId};
pub use gantt::{Gantt, GanttRow};
pub use plan::{ExecutedOp, ExecutedPlan, Op, OpId, PlanError, PlanExecutor};
pub use platform::Platform;
pub use remote::{RemoteCostModel, RemoteLink, WorkerId};
pub use time::{SimDuration, SimTime};
pub use timeline::{Interval, Timeline, TimelineSet};
