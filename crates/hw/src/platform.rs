//! Hardware platform descriptions.

use serde::{Deserialize, Serialize};

use crate::{devices, CalibrationProfile, Device, SimDuration};

/// A hybrid CPU-GPU platform description, the input to
/// [`AffineCostModel::from_platform`](crate::AffineCostModel::from_platform).
///
/// Field values are *effective* (achieved) rates rather than datasheet peaks:
/// they already fold in quantization/dequantization overhead and framework
/// dispatch cost, which is how the paper's warmup phase measures them (§IV-A).
///
/// A platform may carry several identical GPUs ([`Platform::num_gpus`]),
/// each with its own PCIe lane; the per-GPU rates (`gpu_tflops`,
/// `pcie_gbps`, `gpu_mem_bytes`) describe **one** GPU. The presets model
/// the paper's single-GPU machines; scale out with
/// [`Platform::with_gpus`].
///
/// # Example
///
/// ```
/// use hybrimoe_hw::Platform;
///
/// let p = Platform::a6000_xeon10();
/// assert_eq!(p.num_gpus, 1);
/// assert!(p.gpu_tflops > p.cpu_gflops / 1000.0);
/// let multi = Platform::rtx4060_laptop().with_gpus(4);
/// assert_eq!(multi.devices().count(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable platform name.
    pub name: String,
    /// Number of identical GPUs (each with its own PCIe lane).
    pub num_gpus: usize,
    /// Effective CPU throughput for quantized expert GEMM, in GFLOP/s.
    pub cpu_gflops: f64,
    /// Effective CPU memory bandwidth for weight streaming, in GB/s.
    pub cpu_mem_bw_gbps: f64,
    /// Per-task dispatch overhead on the CPU (warm).
    pub cpu_task_overhead: SimDuration,
    /// Extra penalty for the first CPU expert of a burst (cold caches).
    pub cpu_cold_penalty: SimDuration,
    /// Effective GPU throughput for quantized expert GEMM, in TFLOP/s.
    pub gpu_tflops: f64,
    /// Kernel launch + synchronization overhead per GPU expert task.
    pub gpu_launch: SimDuration,
    /// Token count below which GPU expert time is flat (latency-bound).
    pub gpu_saturation_tokens: u32,
    /// Effective PCIe bandwidth for pinned host-to-device copies, in GB/s.
    pub pcie_gbps: f64,
    /// Per-transfer PCIe latency.
    pub pcie_latency: SimDuration,
    /// GPU memory available for the expert cache, in bytes.
    pub gpu_mem_bytes: u64,
}

impl Platform {
    /// The paper's evaluation platform: NVIDIA RTX A6000 with an Intel Xeon
    /// Gold 5220R restricted to 10 cores (§VI-A1).
    pub fn a6000_xeon10() -> Self {
        Platform {
            name: "A6000 + Xeon-5220R(10c)".to_owned(),
            num_gpus: 1,
            // 10 cores x AVX-512 with on-the-fly Q4 dequant.
            cpu_gflops: 280.0,
            cpu_mem_bw_gbps: 70.0,
            cpu_task_overhead: SimDuration::from_micros(60),
            cpu_cold_penalty: SimDuration::from_micros(400),
            // Marlin-style 4-bit kernels on an A6000.
            gpu_tflops: 48.0,
            gpu_launch: SimDuration::from_micros(45),
            gpu_saturation_tokens: 16,
            // PCIe 4.0 x16, achieved.
            pcie_gbps: 22.0,
            pcie_latency: SimDuration::from_micros(15),
            gpu_mem_bytes: 48 * 1024 * 1024 * 1024,
        }
    }

    /// A consumer edge platform: laptop RTX 4060 (8 GB) with an 8-core
    /// mobile CPU. Used for scalability discussions; not a paper figure.
    pub fn rtx4060_laptop() -> Self {
        Platform {
            name: "RTX4060-Laptop + 8c mobile".to_owned(),
            num_gpus: 1,
            cpu_gflops: 160.0,
            cpu_mem_bw_gbps: 55.0,
            cpu_task_overhead: SimDuration::from_micros(30),
            cpu_cold_penalty: SimDuration::from_micros(260),
            gpu_tflops: 22.0,
            gpu_launch: SimDuration::from_micros(55),
            gpu_saturation_tokens: 16,
            pcie_gbps: 12.0,
            pcie_latency: SimDuration::from_micros(20),
            gpu_mem_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Round numbers for unit tests: 100 GFLOP/s CPU, 10 TFLOP/s GPU,
    /// 10 GB/s PCIe, zero overheads.
    pub fn test_round_numbers() -> Self {
        Platform {
            name: "test".to_owned(),
            num_gpus: 1,
            cpu_gflops: 100.0,
            cpu_mem_bw_gbps: 100.0,
            cpu_task_overhead: SimDuration::ZERO,
            cpu_cold_penalty: SimDuration::ZERO,
            gpu_tflops: 10.0,
            gpu_launch: SimDuration::ZERO,
            gpu_saturation_tokens: 1,
            pcie_gbps: 10.0,
            pcie_latency: SimDuration::ZERO,
            gpu_mem_bytes: 1024 * 1024 * 1024,
        }
    }

    /// Returns a copy with `num_gpus` identical GPUs (each with its own
    /// PCIe lane). Expert shards are distributed across them by the
    /// scheduler's affinity map.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero or exceeds 64 (GPU ids are dense `u8`
    /// indices; 64 bounds the simulation's device count, far beyond any
    /// realistic node).
    pub fn with_gpus(mut self, num_gpus: usize) -> Platform {
        assert!(
            (1..=64).contains(&num_gpus),
            "num_gpus must be in 1..=64, got {num_gpus}"
        );
        self.num_gpus = num_gpus;
        self
    }

    /// The devices of this platform in canonical order: `CPU`, one GPU per
    /// shard, one PCIe lane per GPU.
    pub fn devices(&self) -> impl Iterator<Item = Device> {
        devices(self.num_gpus)
    }

    /// Returns a copy with the CPU-side parameters replaced by measured
    /// values from a warmup calibration run.
    pub fn with_calibration(&self, calibration: &CalibrationProfile) -> Platform {
        let mut p = self.clone();
        p.cpu_gflops = calibration.cpu_gflops;
        p.cpu_mem_bw_gbps = calibration.cpu_mem_bw_gbps;
        p.cpu_task_overhead = calibration.cpu_task_overhead;
        p.cpu_cold_penalty = calibration.cpu_cold_penalty;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for p in [
            Platform::a6000_xeon10(),
            Platform::rtx4060_laptop(),
            Platform::test_round_numbers(),
        ] {
            assert!(p.cpu_gflops > 0.0);
            assert!(p.gpu_tflops > 0.0);
            assert!(p.pcie_gbps > 0.0);
            assert!(p.gpu_mem_bytes > 0);
            assert!(!p.name.is_empty());
            assert_eq!(p.num_gpus, 1, "presets model the paper's 1-GPU rigs");
        }
    }

    #[test]
    fn with_gpus_scales_the_device_list() {
        let p = Platform::test_round_numbers().with_gpus(4);
        assert_eq!(p.num_gpus, 4);
        assert_eq!(p.devices().count(), 9);
        let devs: Vec<Device> = p.devices().collect();
        assert_eq!(devs[0], Device::Cpu);
        assert_eq!(devs[4], Device::gpu(3));
        assert_eq!(devs[8], Device::pcie(3));
    }

    #[test]
    #[should_panic(expected = "num_gpus")]
    fn zero_gpus_rejected() {
        let _ = Platform::test_round_numbers().with_gpus(0);
    }

    #[test]
    fn calibration_overrides_cpu_only() {
        let base = Platform::a6000_xeon10();
        let cal = CalibrationProfile {
            cpu_gflops: 123.0,
            cpu_mem_bw_gbps: 45.0,
            cpu_task_overhead: SimDuration::from_micros(7),
            cpu_cold_penalty: SimDuration::from_micros(70),
            samples: 16,
        };
        let p = base.with_calibration(&cal);
        assert_eq!(p.cpu_gflops, 123.0);
        assert_eq!(p.cpu_mem_bw_gbps, 45.0);
        assert_eq!(p.gpu_tflops, base.gpu_tflops);
        assert_eq!(p.pcie_gbps, base.pcie_gbps);
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::a6000_xeon10();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
