//! The three resources of the hybrid platform.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A hardware resource that can hold exactly one operation at a time.
///
/// The hybrid platform of the paper has three: the host CPU, the GPU, and the
/// PCIe link moving expert weights between them. Computation ops run on
/// [`Device::Cpu`] or [`Device::Gpu`]; weight transfers occupy
/// [`Device::Pcie`].
///
/// # Example
///
/// ```
/// use hybrimoe_hw::Device;
///
/// assert!(Device::Cpu.is_compute());
/// assert!(!Device::Pcie.is_compute());
/// assert_eq!(Device::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Device {
    /// The host CPU (expert weights always resident in host memory).
    Cpu,
    /// The GPU (computes only experts resident in its cache).
    Gpu,
    /// The PCIe link (host-to-GPU expert weight transfers).
    Pcie,
}

impl Device {
    /// All devices, in canonical order.
    pub const ALL: [Device; 3] = [Device::Cpu, Device::Gpu, Device::Pcie];

    /// Whether this device executes expert computation (as opposed to moving
    /// data).
    pub const fn is_compute(self) -> bool {
        matches!(self, Device::Cpu | Device::Gpu)
    }

    /// A stable short name, used in Gantt charts and reports.
    pub const fn name(self) -> &'static str {
        match self {
            Device::Cpu => "CPU",
            Device::Gpu => "GPU",
            Device::Pcie => "PCIE",
        }
    }

    /// A dense index into [`Device::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Device::Cpu => 0,
            Device::Gpu => 1,
            Device::Pcie => 2,
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_ordering() {
        for (i, d) in Device::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn compute_classification() {
        assert!(Device::Cpu.is_compute());
        assert!(Device::Gpu.is_compute());
        assert!(!Device::Pcie.is_compute());
    }

    #[test]
    fn display_names() {
        assert_eq!(Device::Cpu.to_string(), "CPU");
        assert_eq!(Device::Gpu.to_string(), "GPU");
        assert_eq!(Device::Pcie.to_string(), "PCIE");
    }
}
