//! The resources of the hybrid platform: one CPU, `N` GPUs, and one PCIe
//! lane per GPU.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one GPU (and of its dedicated PCIe lane) on a multi-GPU
/// platform. GPU ids are dense, starting at 0.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::GpuId;
///
/// assert_eq!(GpuId(2).to_string(), "GPU2");
/// assert!(GpuId(0) < GpuId(1));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct GpuId(pub u8);

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

/// A hardware resource that can hold exactly one operation at a time.
///
/// The hybrid platform of the paper has one CPU, one GPU and one PCIe link;
/// the multi-GPU generalization instantiates `N` GPUs, each with its own
/// PCIe lane for host-to-device expert transfers. Computation ops run on
/// [`Device::Cpu`] or [`Device::Gpu`]; weight transfers occupy
/// [`Device::Pcie`].
///
/// The canonical device order of a platform with `n` GPUs is
/// `CPU, GPU0..GPUn-1, PCIE0..PCIEn-1` (see [`devices`]); a device's
/// position in that order is its [`Device::ordinal`].
///
/// # Example
///
/// ```
/// use hybrimoe_hw::Device;
///
/// assert!(Device::Cpu.is_compute());
/// assert!(!Device::pcie(0).is_compute());
/// assert_eq!(Device::gpu(1).ordinal(2), 2);
/// assert_eq!(hybrimoe_hw::devices(1).count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Device {
    /// The host CPU (expert weights always resident in host memory).
    Cpu,
    /// One GPU (computes only experts resident in its cache).
    Gpu(GpuId),
    /// The PCIe lane feeding one GPU (host-to-GPU expert weight transfers).
    Pcie(GpuId),
}

impl Device {
    /// The GPU with index `gpu`.
    pub const fn gpu(gpu: u8) -> Device {
        Device::Gpu(GpuId(gpu))
    }

    /// The PCIe lane feeding GPU `gpu`.
    pub const fn pcie(gpu: u8) -> Device {
        Device::Pcie(GpuId(gpu))
    }

    /// Whether this device executes expert computation (as opposed to moving
    /// data).
    pub const fn is_compute(self) -> bool {
        matches!(self, Device::Cpu | Device::Gpu(_))
    }

    /// The GPU this device belongs to: the GPU itself, or the GPU its PCIe
    /// lane feeds. `None` for the CPU.
    pub const fn gpu_id(self) -> Option<GpuId> {
        match self {
            Device::Cpu => None,
            Device::Gpu(g) | Device::Pcie(g) => Some(g),
        }
    }

    /// The dense position of this device in the canonical order of a
    /// platform with `num_gpus` GPUs: `CPU, GPU0.., PCIE0..`.
    ///
    /// # Panics
    ///
    /// Panics if the device's GPU index is out of range for `num_gpus`.
    pub fn ordinal(self, num_gpus: usize) -> usize {
        match self {
            Device::Cpu => 0,
            Device::Gpu(g) => {
                assert!(
                    (g.0 as usize) < num_gpus,
                    "{self} out of range ({num_gpus} GPUs)"
                );
                1 + g.0 as usize
            }
            Device::Pcie(g) => {
                assert!(
                    (g.0 as usize) < num_gpus,
                    "{self} out of range ({num_gpus} GPUs)"
                );
                1 + num_gpus + g.0 as usize
            }
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::Cpu => f.write_str("CPU"),
            Device::Gpu(g) => write!(f, "{g}"),
            Device::Pcie(g) => write!(f, "PCIE{}", g.0),
        }
    }
}

/// The devices of a platform with `num_gpus` GPUs, in canonical order:
/// `CPU, GPU0..GPUn-1, PCIE0..PCIEn-1`.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{devices, Device};
///
/// let order: Vec<Device> = devices(2).collect();
/// assert_eq!(
///     order,
///     vec![
///         Device::Cpu,
///         Device::gpu(0),
///         Device::gpu(1),
///         Device::pcie(0),
///         Device::pcie(1),
///     ]
/// );
/// ```
pub fn devices(num_gpus: usize) -> impl Iterator<Item = Device> {
    let gpus = 0..num_gpus as u8;
    let lanes = 0..num_gpus as u8;
    std::iter::once(Device::Cpu)
        .chain(gpus.map(Device::gpu))
        .chain(lanes.map(Device::pcie))
}

/// Number of devices of a platform with `num_gpus` GPUs (one CPU plus a
/// GPU and a PCIe lane per GPU).
pub const fn device_count(num_gpus: usize) -> usize {
    1 + 2 * num_gpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_match_canonical_order() {
        for num_gpus in 1..=4 {
            for (i, d) in devices(num_gpus).enumerate() {
                assert_eq!(d.ordinal(num_gpus), i, "{d} at N={num_gpus}");
            }
            assert_eq!(devices(num_gpus).count(), device_count(num_gpus));
        }
    }

    #[test]
    fn compute_classification() {
        assert!(Device::Cpu.is_compute());
        assert!(Device::gpu(0).is_compute());
        assert!(Device::gpu(3).is_compute());
        assert!(!Device::pcie(0).is_compute());
        assert!(!Device::pcie(3).is_compute());
    }

    #[test]
    fn gpu_id_association() {
        assert_eq!(Device::Cpu.gpu_id(), None);
        assert_eq!(Device::gpu(2).gpu_id(), Some(GpuId(2)));
        assert_eq!(Device::pcie(2).gpu_id(), Some(GpuId(2)));
    }

    #[test]
    fn display_names() {
        assert_eq!(Device::Cpu.to_string(), "CPU");
        assert_eq!(Device::gpu(0).to_string(), "GPU0");
        assert_eq!(Device::gpu(3).to_string(), "GPU3");
        assert_eq!(Device::pcie(0).to_string(), "PCIE0");
        assert_eq!(Device::pcie(3).to_string(), "PCIE3");
    }

    #[test]
    fn ordering_is_cpu_then_gpus_then_lanes() {
        assert!(Device::Cpu < Device::gpu(0));
        assert!(Device::gpu(1) < Device::gpu(2));
        assert!(Device::gpu(7) < Device::pcie(0));
        assert!(Device::pcie(0) < Device::pcie(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_ordinal_rejected() {
        let _ = Device::gpu(1).ordinal(1);
    }
}
