//! ASCII Gantt chart rendering of device timelines.
//!
//! Used by examples and experiment binaries to visualize schedules in the
//! style of the paper's Fig. 1 and Fig. 5 timeline diagrams.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime, TimelineSet};

/// One rendered row of a Gantt chart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GanttRow {
    /// Device name.
    pub device: String,
    /// Rendered cells.
    pub cells: String,
}

/// An ASCII Gantt chart of a [`TimelineSet`].
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{Device, Gantt, SimDuration, SimTime, TimelineSet};
///
/// let mut set = TimelineSet::new();
/// set.get_mut(Device::Cpu).push(SimTime::ZERO, SimDuration::from_micros(2), "A");
/// set.get_mut(Device::gpu(0)).push(SimTime::ZERO, SimDuration::from_micros(4), "D");
/// let chart = Gantt::render(&set, 40);
/// assert!(chart.to_string().contains("CPU"));
/// assert!(chart.to_string().contains("GPU0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gantt {
    rows: Vec<GanttRow>,
    makespan: SimDuration,
    width: usize,
}

impl Gantt {
    /// Renders `set` into a chart `width` characters wide.
    ///
    /// Each interval is drawn as a run of its label's first characters inside
    /// `[...]` brackets, idle time as spaces. Zero-width intervals are drawn
    /// as a single `|` marker.
    pub fn render(set: &TimelineSet, width: usize) -> Self {
        let width = width.max(10);
        let makespan = set.makespan();
        let scale = |t: SimTime| -> usize {
            if makespan == SimDuration::ZERO {
                0
            } else {
                ((t.as_nanos() as f64 / makespan.as_nanos() as f64) * (width as f64 - 1.0)).round()
                    as usize
            }
        };
        let mut rows = Vec::new();
        for tl in set.iter() {
            let mut cells = vec![b' '; width];
            for iv in tl.intervals() {
                let a = scale(iv.start);
                let b = scale(iv.end).max(a);
                if a == b {
                    cells[a.min(width - 1)] = b'|';
                    continue;
                }
                cells[a] = b'[';
                cells[b.min(width - 1)] = b']';
                let label: Vec<u8> = iv.label.bytes().filter(|b| *b != b' ').collect();
                let mut li = 0;
                for cell in cells.iter_mut().take(b.min(width - 1)).skip(a + 1) {
                    *cell = if li < label.len() {
                        let c = label[li];
                        li += 1;
                        c
                    } else {
                        b'='
                    };
                }
            }
            rows.push(GanttRow {
                device: tl.device().to_string(),
                cells: String::from_utf8(cells).expect("ascii"),
            });
        }
        Gantt {
            rows,
            makespan,
            width,
        }
    }

    /// The rendered rows, in canonical device order (CPU, GPUs, PCIe
    /// lanes).
    pub fn rows(&self) -> &[GanttRow] {
        &self.rows
    }

    /// The makespan the chart is scaled to.
    pub fn makespan(&self) -> SimDuration {
        self.makespan
    }
}

impl fmt::Display for Gantt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "{:>5} |{}|", row.device, row.cells)?;
        }
        write!(
            f,
            "{:>5} 0{:>width$}",
            "t",
            self.makespan.to_string(),
            width = self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    #[test]
    fn renders_all_three_devices() {
        let mut set = TimelineSet::new();
        set.get_mut(Device::Cpu)
            .push(SimTime::ZERO, SimDuration::from_micros(1), "A");
        let g = Gantt::render(&set, 40);
        assert_eq!(g.rows().len(), 3);
        let s = g.to_string();
        assert!(s.contains("CPU"));
        assert!(s.contains("GPU0"));
        assert!(s.contains("PCIE0"));
    }

    #[test]
    fn renders_one_row_per_device_at_two_gpus() {
        let mut set = TimelineSet::with_gpus(2);
        set.get_mut(Device::gpu(1))
            .push(SimTime::ZERO, SimDuration::from_micros(1), "B");
        let g = Gantt::render(&set, 40);
        assert_eq!(g.rows().len(), 5);
        let s = g.to_string();
        assert!(s.contains("GPU1"));
        assert!(s.contains("PCIE1"));
    }

    #[test]
    fn empty_timeline_set_renders() {
        let set = TimelineSet::new();
        let g = Gantt::render(&set, 20);
        assert_eq!(g.makespan(), SimDuration::ZERO);
        assert!(!g.to_string().is_empty());
    }

    #[test]
    fn labels_appear_in_cells() {
        let mut set = TimelineSet::new();
        set.get_mut(Device::gpu(0))
            .push(SimTime::ZERO, SimDuration::from_micros(10), "expertD");
        let g = Gantt::render(&set, 60);
        let gpu_row = &g.rows()[Device::gpu(0).ordinal(1)];
        assert!(gpu_row.cells.contains('e'), "cells: {}", gpu_row.cells);
    }

    #[test]
    fn width_is_clamped() {
        let set = TimelineSet::new();
        let g = Gantt::render(&set, 1);
        assert!(g.rows()[0].cells.len() >= 10);
    }
}
