//! Expert cost models.
//!
//! A [`CostModel`] answers the three questions every scheduling decision in
//! HybriMoE reduces to: how long does this expert take on the CPU for a given
//! token load, how long on the GPU, and how long to move its weights over
//! PCIe. The shapes follow the paper's measurements (Fig. 3(e)/(f)):
//!
//! * CPU time grows **linearly** with the token workload, with a cold-start
//!   penalty on the first expert of a burst and a memory-bandwidth floor for
//!   tiny loads (a GEMV must stream the full weight matrix once);
//! * GPU time is **nearly flat** in the workload until the GPU saturates,
//!   dominated by a launch overhead for small loads;
//! * transfer time is **constant per expert** (weight bytes over PCIe).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Platform, SimDuration};

/// The static cost-relevant description of one expert.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::ExpertProfile;
///
/// // A Mixtral-sized expert: three 4096x14336 matrices at ~4.5 bits/weight.
/// let e = ExpertProfile::new(99_090_432, 352_321_536);
/// assert!(e.bytes() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExpertProfile {
    bytes: u64,
    flops_per_token: u64,
}

impl ExpertProfile {
    /// Creates a profile from the quantized weight size in bytes and the
    /// floating-point operations one token's forward pass costs.
    pub const fn new(bytes: u64, flops_per_token: u64) -> Self {
        ExpertProfile {
            bytes,
            flops_per_token,
        }
    }

    /// Quantized weight bytes that a PCIe transfer must move.
    pub const fn bytes(&self) -> u64 {
        self.bytes
    }

    /// FLOPs required to push one token through this expert.
    pub const fn flops_per_token(&self) -> u64 {
        self.flops_per_token
    }
}

/// Predicts expert execution and transfer times on the hybrid platform.
///
/// Implementations must be monotone: more tokens never cost less time on
/// either compute device.
pub trait CostModel: fmt::Debug + Send + Sync {
    /// Time to compute `tokens` tokens of this expert on the CPU.
    ///
    /// `warm` is false for the first CPU expert of a burst, which pays an
    /// extra cold-start penalty (paper Fig. 3(e)).
    fn cpu_compute(&self, expert: &ExpertProfile, tokens: u32, warm: bool) -> SimDuration;

    /// Time to compute `tokens` tokens of this expert on the GPU, assuming
    /// its weights are resident in GPU memory.
    fn gpu_compute(&self, expert: &ExpertProfile, tokens: u32) -> SimDuration;

    /// Time to move this expert's weights from host to GPU memory.
    fn transfer(&self, expert: &ExpertProfile) -> SimDuration;
}

/// The analytic cost model derived from a [`Platform`] description.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{AffineCostModel, CostModel, ExpertProfile, Platform};
///
/// let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
/// let e = ExpertProfile::new(5_000_000, 17_000_000); // DeepSeek-sized
/// // GPU time is far less sensitive to load than CPU time:
/// let cpu_ratio = m.cpu_compute(&e, 64, true).as_nanos() as f64
///     / m.cpu_compute(&e, 1, true).as_nanos() as f64;
/// let gpu_ratio = m.gpu_compute(&e, 64).as_nanos() as f64
///     / m.gpu_compute(&e, 1).as_nanos() as f64;
/// assert!(cpu_ratio > 4.0 * gpu_ratio);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffineCostModel {
    cpu_gflops: f64,
    cpu_mem_bw_gbps: f64,
    cpu_task_overhead: SimDuration,
    cpu_cold_penalty: SimDuration,
    gpu_tflops: f64,
    gpu_launch: SimDuration,
    gpu_saturation_tokens: u32,
    pcie_gbps: f64,
    pcie_latency: SimDuration,
}

impl AffineCostModel {
    /// Builds the cost model from a platform description.
    pub fn from_platform(platform: &Platform) -> Self {
        AffineCostModel {
            cpu_gflops: platform.cpu_gflops,
            cpu_mem_bw_gbps: platform.cpu_mem_bw_gbps,
            cpu_task_overhead: platform.cpu_task_overhead,
            cpu_cold_penalty: platform.cpu_cold_penalty,
            gpu_tflops: platform.gpu_tflops,
            gpu_launch: platform.gpu_launch,
            gpu_saturation_tokens: platform.gpu_saturation_tokens,
            pcie_gbps: platform.pcie_gbps,
            pcie_latency: platform.pcie_latency,
        }
    }
}

impl CostModel for AffineCostModel {
    fn cpu_compute(&self, expert: &ExpertProfile, tokens: u32, warm: bool) -> SimDuration {
        // Compute-bound term: linear in tokens.
        let compute_s = tokens as f64 * expert.flops_per_token() as f64 / (self.cpu_gflops * 1e9);
        // Memory-bound floor: the weight matrix is streamed at least once.
        let stream_s = expert.bytes() as f64 / (self.cpu_mem_bw_gbps * 1e9);
        let body = SimDuration::from_secs_f64(compute_s.max(stream_s));
        let overhead = if warm {
            self.cpu_task_overhead
        } else {
            self.cpu_task_overhead + self.cpu_cold_penalty
        };
        body + overhead
    }

    fn gpu_compute(&self, expert: &ExpertProfile, tokens: u32) -> SimDuration {
        // Small batches are latency-bound: below `gpu_saturation_tokens`
        // the kernel underutilizes the GPU and costs the same as the
        // saturation batch (wave quantization); the launch overhead adds a
        // flat floor. Past saturation the cost is throughput-bound.
        let effective = tokens.max(self.gpu_saturation_tokens);
        let compute_s =
            effective as f64 * expert.flops_per_token() as f64 / (self.gpu_tflops * 1e12);
        self.gpu_launch + SimDuration::from_secs_f64(compute_s)
    }

    fn transfer(&self, expert: &ExpertProfile) -> SimDuration {
        let wire_s = expert.bytes() as f64 / (self.pcie_gbps * 1e9);
        self.pcie_latency + SimDuration::from_secs_f64(wire_s)
    }
}

/// A toy cost model with explicit per-unit costs, used for worked examples
/// and golden tests (e.g. the Fig. 5 schedule of the paper, where CPU time is
/// proportional to load, GPU time is constant, and a transfer takes 3 units).
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{CostModel, ExpertProfile, SimDuration, UnitCostModel};
///
/// let m = UnitCostModel::paper_fig5();
/// let e = ExpertProfile::new(0, 0); // profile is ignored
/// assert_eq!(m.cpu_compute(&e, 3, true), SimDuration::from_micros(3));
/// assert_eq!(m.gpu_compute(&e, 3), SimDuration::from_micros(1));
/// assert_eq!(m.transfer(&e), SimDuration::from_micros(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitCostModel {
    /// CPU time per unit of load.
    pub cpu_per_load: SimDuration,
    /// Constant GPU time per expert task.
    pub gpu_per_task: SimDuration,
    /// Constant transfer time per expert.
    pub transfer_per_expert: SimDuration,
}

impl UnitCostModel {
    /// The cost model of the paper's Fig. 5 worked example: one time unit is
    /// one microsecond, GPU tasks take 1 unit, transfers 3 units, and CPU
    /// tasks `load` units.
    pub fn paper_fig5() -> Self {
        UnitCostModel {
            cpu_per_load: SimDuration::from_micros(1),
            gpu_per_task: SimDuration::from_micros(1),
            transfer_per_expert: SimDuration::from_micros(3),
        }
    }
}

impl CostModel for UnitCostModel {
    fn cpu_compute(&self, _expert: &ExpertProfile, tokens: u32, _warm: bool) -> SimDuration {
        self.cpu_per_load * tokens as u64
    }

    fn gpu_compute(&self, _expert: &ExpertProfile, _tokens: u32) -> SimDuration {
        self.gpu_per_task
    }

    fn transfer(&self, _expert: &ExpertProfile) -> SimDuration {
        self.transfer_per_expert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    fn mixtral_expert() -> ExpertProfile {
        ExpertProfile::new(99_090_432, 352_321_536)
    }

    fn deepseek_expert() -> ExpertProfile {
        ExpertProfile::new(4_866_048, 17_301_504)
    }

    #[test]
    fn cpu_time_linear_in_tokens() {
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let e = mixtral_expert();
        let t32 = m.cpu_compute(&e, 32, true);
        let t64 = m.cpu_compute(&e, 64, true);
        // Doubling a compute-bound load roughly doubles the body time.
        let ratio = t64.as_nanos() as f64 / t32.as_nanos() as f64;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn cpu_memory_floor_applies_to_single_token() {
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let e = mixtral_expert();
        // One token is memory-bound (the full weight matrix must stream at
        // least once), so doubling tokens grows time sublinearly.
        let t1 = m.cpu_compute(&e, 1, true);
        let t2 = m.cpu_compute(&e, 2, true);
        let ratio = t2.as_nanos() as f64 / t1.as_nanos() as f64;
        assert!(ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn cold_start_costs_more() {
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let e = deepseek_expert();
        assert!(m.cpu_compute(&e, 4, false) > m.cpu_compute(&e, 4, true));
    }

    #[test]
    fn gpu_time_flat_below_saturation() {
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let e = mixtral_expert();
        assert_eq!(m.gpu_compute(&e, 1), m.gpu_compute(&e, 16));
    }

    #[test]
    fn gpu_time_grows_past_saturation() {
        let platform = Platform::a6000_xeon10();
        let m = AffineCostModel::from_platform(&platform);
        let e = mixtral_expert();
        let sat = platform.gpu_saturation_tokens;
        assert!(m.gpu_compute(&e, sat * 4) > m.gpu_compute(&e, sat));
    }

    #[test]
    fn decode_prefers_cpu_over_transfer_for_large_experts() {
        // The economics that motivate hybrid execution (paper §III): for one
        // decode token, computing a Mixtral expert on the CPU beats paying
        // the PCIe transfer.
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let e = mixtral_expert();
        assert!(m.cpu_compute(&e, 1, true) < m.transfer(&e));
    }

    #[test]
    fn prefill_prefers_transfer_plus_gpu_for_heavy_loads() {
        // With 32 tokens routed to a Mixtral expert, transferring then
        // computing on GPU beats the CPU (paper Fig. 1(c)).
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let e = mixtral_expert();
        let via_gpu = m.transfer(&e) + m.gpu_compute(&e, 32);
        assert!(via_gpu < m.cpu_compute(&e, 32, true));
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        assert!(m.transfer(&mixtral_expert()) > m.transfer(&deepseek_expert()));
    }

    #[test]
    fn unit_model_matches_fig5_constants() {
        let m = UnitCostModel::paper_fig5();
        let e = ExpertProfile::new(1, 1);
        assert_eq!(m.cpu_compute(&e, 4, false), SimDuration::from_micros(4));
        assert_eq!(m.gpu_compute(&e, 100), SimDuration::from_micros(1));
        assert_eq!(m.transfer(&e), SimDuration::from_micros(3));
    }
}
