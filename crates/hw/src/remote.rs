//! Cost modeling for remote expert workers.
//!
//! Scale-out changes nothing about the scheduling math: a remote worker is
//! a device with a different transfer cost. Where a GPU pays a PCIe
//! transfer to receive an expert's *weights*, a worker pays a network
//! round trip to receive an expert's *activations* and return its
//! outputs. [`RemoteLink`] prices that round trip, and
//! [`RemoteCostModel`] drops it into the [`CostModel`] slot so every
//! scheduler in the repo can price a network hop exactly like a PCIe
//! lane.

use serde::{Deserialize, Serialize};

use crate::cost::{CostModel, ExpertProfile};
use crate::time::SimDuration;

/// Identifies one remote expert worker in a deployment. Workers own
/// experts under the same static affinity map as GPU cache shards:
/// `expert % num_workers`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u16);

/// The network link to one worker: bandwidth plus a per-message latency
/// floor (syscalls, framing, kernel scheduling).
///
/// # Example
///
/// ```
/// use hybrimoe_hw::RemoteLink;
///
/// let loopback = RemoteLink::loopback();
/// let ten_gbe = RemoteLink::ten_gbe();
/// // A 64-token batch of a 2048-wide model, f32 activations each way:
/// let bytes = 64 * 2048 * 4;
/// assert!(loopback.round_trip(bytes, bytes) < ten_gbe.round_trip(bytes, bytes));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteLink {
    /// Link bandwidth in gigabits per second.
    pub gbps: f64,
    /// One-way per-message latency floor.
    pub latency: SimDuration,
}

impl RemoteLink {
    /// A same-host loopback/UDS link: memory-bandwidth-limited, tens of
    /// microseconds of syscall latency.
    pub fn loopback() -> RemoteLink {
        RemoteLink {
            gbps: 50.0,
            latency: SimDuration::from_micros(20),
        }
    }

    /// A datacenter 10 GbE link.
    pub fn ten_gbe() -> RemoteLink {
        RemoteLink {
            gbps: 10.0,
            latency: SimDuration::from_micros(80),
        }
    }

    /// Time to push `bytes` one way over this link.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        let wire_s = bytes as f64 * 8.0 / (self.gbps * 1e9);
        self.latency + SimDuration::from_secs_f64(wire_s)
    }

    /// Time for a request/reply exchange carrying `bytes_out` to the
    /// worker and `bytes_back` home.
    pub fn round_trip(&self, bytes_out: u64, bytes_back: u64) -> SimDuration {
        self.transfer(bytes_out) + self.transfer(bytes_back)
    }

    /// The wire cost of executing one `tokens x hidden` f32 expert batch
    /// remotely: activations out, outputs back, same shape each way.
    pub fn execute_batch_cost(&self, tokens: u32, hidden: u32) -> SimDuration {
        let bytes = tokens as u64 * hidden as u64 * 4;
        self.round_trip(bytes, bytes)
    }
}

/// A [`CostModel`] for expert execution on a remote worker: compute costs
/// delegate to the worker's own (CPU) model, and the transfer cost prices
/// the network link instead of a PCIe lane — the scheduler needs no other
/// change to reason about a worker.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{
///     AffineCostModel, CostModel, ExpertProfile, Platform, RemoteCostModel, RemoteLink,
/// };
///
/// let local = AffineCostModel::from_platform(&Platform::a6000_xeon10());
/// let remote = RemoteCostModel::new(local.clone(), RemoteLink::ten_gbe());
/// let e = ExpertProfile::new(5_000_000, 17_000_000);
/// // The worker's CPU is the same CPU; only the "lane" differs.
/// assert_eq!(remote.cpu_compute(&e, 8, true), local.cpu_compute(&e, 8, true));
/// assert_ne!(remote.transfer(&e), local.transfer(&e));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteCostModel<M> {
    /// The worker-local compute model.
    pub base: M,
    /// The link to the worker.
    pub link: RemoteLink,
    /// Tokens per batch assumed when pricing an expert "transfer" (the
    /// activations round trip scales with batch size, but the
    /// [`CostModel::transfer`] signature is per-expert; schedulers that
    /// know the batch should call [`RemoteLink::execute_batch_cost`]
    /// directly).
    pub assumed_batch_tokens: u32,
}

impl<M> RemoteCostModel<M> {
    /// Wraps a worker-local compute model with a network link, assuming
    /// 8-token batches for per-expert transfer pricing.
    pub fn new(base: M, link: RemoteLink) -> RemoteCostModel<M> {
        RemoteCostModel {
            base,
            link,
            assumed_batch_tokens: 8,
        }
    }
}

impl<M: CostModel> CostModel for RemoteCostModel<M> {
    fn cpu_compute(&self, expert: &ExpertProfile, tokens: u32, warm: bool) -> SimDuration {
        self.base.cpu_compute(expert, tokens, warm)
    }

    fn gpu_compute(&self, expert: &ExpertProfile, tokens: u32) -> SimDuration {
        self.base.gpu_compute(expert, tokens)
    }

    fn transfer(&self, expert: &ExpertProfile) -> SimDuration {
        // Activations scale with hidden width; approximate hidden from the
        // expert's per-token FLOPs (three `hidden x inter` matmuls make
        // `flops = 6 * hidden * inter`, and bytes ≈ 3 * hidden * inter / 2
        // at ~4.5 bits/weight, so hidden cancels out of neither cleanly —
        // use the byte-derived estimate, which is exact for the repo's
        // synthetic experts).
        let hidden = estimate_hidden(expert);
        self.link
            .execute_batch_cost(self.assumed_batch_tokens, hidden)
    }
}

/// Estimates the hidden width of an expert from its profile, assuming the
/// repo's square-ish SwiGLU experts (`inter = 1.5 * hidden`) quantized at
/// `Q4_0` (~4.5 bits per weight): `bytes ≈ 3 * hidden * inter * 9/16`.
fn estimate_hidden(expert: &ExpertProfile) -> u32 {
    let weights = expert.bytes() as f64 * 16.0 / 9.0 / 3.0; // hidden * inter
    ((weights / 1.5).sqrt().round() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AffineCostModel, Platform};

    #[test]
    fn link_costs_scale_with_bytes_and_latency() {
        let link = RemoteLink::loopback();
        assert!(link.transfer(1_000_000) > link.transfer(1_000));
        // The latency floor dominates tiny messages.
        assert!(link.transfer(1) >= link.latency);
        // A round trip pays the floor twice.
        assert!(link.round_trip(1, 1) >= link.latency * 2);
    }

    #[test]
    fn batch_cost_scales_with_tokens() {
        let link = RemoteLink::ten_gbe();
        assert!(link.execute_batch_cost(64, 2048) > link.execute_batch_cost(1, 2048));
    }

    #[test]
    fn remote_model_delegates_compute() {
        let base = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let remote = RemoteCostModel::new(base.clone(), RemoteLink::loopback());
        let e = ExpertProfile::new(4_866_048, 17_301_504);
        assert_eq!(
            remote.cpu_compute(&e, 4, false),
            base.cpu_compute(&e, 4, false)
        );
        assert_eq!(remote.gpu_compute(&e, 4), base.gpu_compute(&e, 4));
    }

    #[test]
    fn remote_transfer_moves_activations_not_weights() {
        // Shipping an 8-token activation batch is far cheaper than moving
        // a Mixtral expert's ~99 MB of weights over the same wire would
        // be — the whole point of compute-near-weights workers.
        let base = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let link = RemoteLink::ten_gbe();
        let remote = RemoteCostModel::new(base, link);
        let e = ExpertProfile::new(99_090_432, 352_321_536);
        assert!(remote.transfer(&e) < link.transfer(e.bytes()));
    }

    #[test]
    fn estimated_hidden_is_exact_for_synthetic_experts() {
        // tiny_test's routed expert: hidden 64, inter 96 — but packed_bytes
        // uses the real Q4 layout; accept a loose band.
        let e = ExpertProfile::new(3 * 64 * 96 * 9 / 16, 6 * 64 * 96);
        let h = estimate_hidden(&e);
        assert!((32..=128).contains(&h), "hidden estimate {h}");
    }
}
