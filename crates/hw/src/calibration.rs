//! Warmup-phase calibration output.
//!
//! The paper's system "begins with a warmup phase to collect essential
//! performance metrics, such as CPU and GPU processing speeds and data
//! transfer latency" (§IV-A). In this reproduction the CPU side is measured
//! for real by `hybrimoe-kernels`; the result is carried in a
//! [`CalibrationProfile`] and folded into a
//! [`Platform`](crate::Platform) via
//! [`Platform::with_calibration`](crate::Platform::with_calibration).

use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// Measured CPU performance parameters from a warmup run.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{CalibrationProfile, Platform, SimDuration};
///
/// let cal = CalibrationProfile {
///     cpu_gflops: 200.0,
///     cpu_mem_bw_gbps: 60.0,
///     cpu_task_overhead: SimDuration::from_micros(20),
///     cpu_cold_penalty: SimDuration::from_micros(150),
///     samples: 32,
/// };
/// let platform = Platform::a6000_xeon10().with_calibration(&cal);
/// assert_eq!(platform.cpu_gflops, 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationProfile {
    /// Measured effective CPU throughput, in GFLOP/s.
    pub cpu_gflops: f64,
    /// Measured effective CPU memory bandwidth, in GB/s.
    pub cpu_mem_bw_gbps: f64,
    /// Measured per-task dispatch overhead.
    pub cpu_task_overhead: SimDuration,
    /// Measured first-task cold penalty.
    pub cpu_cold_penalty: SimDuration,
    /// Number of measurement samples that produced this profile.
    pub samples: u32,
}

impl CalibrationProfile {
    /// Distills raw measurement totals into a profile of effective achieved
    /// rates: `flops` and `bytes` of work observed over `wall_secs` of
    /// kernel wall-clock, across `samples` tasks. The whole wall-clock is
    /// attributed to both the FLOPs and the bytes (conservative effective
    /// rates, the same convention as the kernel-level warmup calibration),
    /// so the explicit overhead terms are zero. Returns `None` for
    /// degenerate measurements (no samples or no elapsed time).
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_hw::CalibrationProfile;
    ///
    /// let cal = CalibrationProfile::from_effective_rates(2_000_000_000, 500_000_000, 1.0, 8)
    ///     .unwrap();
    /// assert_eq!(cal.cpu_gflops, 2.0);
    /// assert_eq!(cal.cpu_mem_bw_gbps, 0.5);
    /// assert!(cal.is_plausible());
    /// assert!(CalibrationProfile::from_effective_rates(1, 1, 0.0, 8).is_none());
    /// ```
    pub fn from_effective_rates(
        flops: u64,
        bytes: u64,
        wall_secs: f64,
        samples: u32,
    ) -> Option<CalibrationProfile> {
        if samples == 0 || !wall_secs.is_finite() || wall_secs <= 0.0 {
            return None;
        }
        Some(CalibrationProfile {
            cpu_gflops: (flops as f64 / wall_secs / 1e9).max(0.01),
            cpu_mem_bw_gbps: (bytes as f64 / wall_secs / 1e9).max(0.01),
            cpu_task_overhead: SimDuration::ZERO,
            cpu_cold_penalty: SimDuration::ZERO,
            samples,
        })
    }

    /// Whether the measured values are physically plausible (positive finite
    /// rates). Used to reject degenerate warmup runs.
    pub fn is_plausible(&self) -> bool {
        self.cpu_gflops.is_finite()
            && self.cpu_gflops > 0.0
            && self.cpu_mem_bw_gbps.is_finite()
            && self.cpu_mem_bw_gbps > 0.0
            && self.samples > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CalibrationProfile {
        CalibrationProfile {
            cpu_gflops: 150.0,
            cpu_mem_bw_gbps: 40.0,
            cpu_task_overhead: SimDuration::from_micros(10),
            cpu_cold_penalty: SimDuration::from_micros(100),
            samples: 8,
        }
    }

    #[test]
    fn plausibility() {
        assert!(sample().is_plausible());
        let mut bad = sample();
        bad.cpu_gflops = 0.0;
        assert!(!bad.is_plausible());
        let mut nan = sample();
        nan.cpu_mem_bw_gbps = f64::NAN;
        assert!(!nan.is_plausible());
        let mut empty = sample();
        empty.samples = 0;
        assert!(!empty.is_plausible());
    }

    #[test]
    fn serde_round_trip() {
        let c = sample();
        let json = serde_json::to_string(&c).unwrap();
        let back: CalibrationProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
