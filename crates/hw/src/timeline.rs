//! Per-device busy timelines.
//!
//! A [`Timeline`] records the ordered, non-overlapping busy intervals of one
//! [`Device`]; a [`TimelineSet`] bundles every device timeline of the
//! hybrid platform (one CPU, `N` GPUs, `N` PCIe lanes) and answers
//! makespan/utilization queries over them.

use serde::{Deserialize, Serialize};

use crate::{devices, Device, SimDuration, SimTime};

/// One busy interval on a device timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval (exclusive).
    pub end: SimTime,
    /// Human-readable label, e.g. `"L3/E17 compute"`.
    pub label: String,
}

impl Interval {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The ordered busy intervals of one device.
///
/// Operations are appended with [`Timeline::push`], which starts each op at
/// the later of the device's ready time and the op's own release time —
/// exactly the "fill the earliest-available timeline" primitive used by the
/// paper's scheduling simulation (§IV-B).
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{Device, SimDuration, SimTime, Timeline};
///
/// let mut tl = Timeline::new(Device::gpu(0));
/// let (s1, e1) = tl.push(SimTime::ZERO, SimDuration::from_micros(10), "op1");
/// // Released early but the device is busy until e1:
/// let (s2, _) = tl.push(SimTime::ZERO, SimDuration::from_micros(5), "op2");
/// assert_eq!(s1, SimTime::ZERO);
/// assert_eq!(s2, e1);
/// assert_eq!(tl.busy_time(), SimDuration::from_micros(15));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    device: Device,
    intervals: Vec<Interval>,
    cursor: SimTime,
}

impl Timeline {
    /// Creates an empty timeline for `device`, ready at the clock origin.
    pub fn new(device: Device) -> Self {
        Timeline {
            device,
            intervals: Vec::new(),
            cursor: SimTime::ZERO,
        }
    }

    /// Creates an empty timeline whose device becomes ready at `ready`.
    pub fn starting_at(device: Device, ready: SimTime) -> Self {
        Timeline {
            device,
            intervals: Vec::new(),
            cursor: ready,
        }
    }

    /// The device this timeline belongs to.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The time at which the device becomes idle.
    pub fn ready_at(&self) -> SimTime {
        self.cursor
    }

    /// When an op released at `release` and lasting `duration` would run,
    /// without committing it.
    pub fn peek(&self, release: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let start = self.cursor.max(release);
        (start, start + duration)
    }

    /// Appends an op released at `release` with the given `duration`;
    /// returns its `(start, end)` times.
    ///
    /// Zero-length ops are recorded too (they serve as markers in Gantt
    /// output) but do not advance the cursor.
    pub fn push(
        &mut self,
        release: SimTime,
        duration: SimDuration,
        label: impl Into<String>,
    ) -> (SimTime, SimTime) {
        let (start, end) = self.peek(release, duration);
        self.intervals.push(Interval {
            start,
            end,
            label: label.into(),
        });
        self.cursor = end;
        (start, end)
    }

    /// The recorded busy intervals, in execution order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Total busy time across all intervals.
    pub fn busy_time(&self) -> SimDuration {
        self.intervals.iter().map(Interval::duration).sum()
    }

    /// Utilization over `[SimTime::ZERO, horizon]`, in `[0, 1]`.
    ///
    /// Returns `0.0` for a zero horizon.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        if horizon == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_time().as_nanos() as f64 / horizon.as_nanos() as f64
    }

    /// Checks the internal invariant: intervals are ordered and
    /// non-overlapping.
    pub fn is_well_formed(&self) -> bool {
        self.intervals.windows(2).all(|w| w[0].end <= w[1].start)
    }
}

/// The device timelines of a hybrid platform with `N` GPUs, in canonical
/// order (`CPU, GPU0.., PCIE0..`).
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{Device, SimDuration, SimTime, TimelineSet};
///
/// let mut set = TimelineSet::with_gpus(2);
/// set.get_mut(Device::Cpu)
///     .push(SimTime::ZERO, SimDuration::from_micros(4), "expert A");
/// set.get_mut(Device::gpu(1))
///     .push(SimTime::ZERO, SimDuration::from_micros(9), "expert D");
/// assert_eq!(set.makespan(), SimDuration::from_micros(9));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSet {
    num_gpus: usize,
    timelines: Vec<Timeline>,
}

impl TimelineSet {
    /// Creates the timelines of a single-GPU platform (the paper's setup),
    /// starting at the clock origin.
    pub fn new() -> Self {
        TimelineSet::with_gpus(1)
    }

    /// Creates the timelines of a platform with `num_gpus` GPUs, starting
    /// at the clock origin.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn with_gpus(num_gpus: usize) -> Self {
        TimelineSet::starting_at_with_gpus(num_gpus, SimTime::ZERO)
    }

    /// Creates single-GPU timelines that all become ready at `ready`.
    pub fn starting_at(ready: SimTime) -> Self {
        TimelineSet::starting_at_with_gpus(1, ready)
    }

    /// Creates the timelines of a platform with `num_gpus` GPUs that all
    /// become ready at `ready`.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn starting_at_with_gpus(num_gpus: usize, ready: SimTime) -> Self {
        assert!(num_gpus > 0, "a platform needs at least one GPU");
        TimelineSet {
            num_gpus,
            timelines: devices(num_gpus)
                .map(|d| Timeline::starting_at(d, ready))
                .collect(),
        }
    }

    /// The number of GPUs this set models.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// The timeline of `device`.
    ///
    /// # Panics
    ///
    /// Panics if the device's GPU index is out of range.
    pub fn get(&self, device: Device) -> &Timeline {
        &self.timelines[device.ordinal(self.num_gpus)]
    }

    /// The mutable timeline of `device`.
    ///
    /// # Panics
    ///
    /// Panics if the device's GPU index is out of range.
    pub fn get_mut(&mut self, device: Device) -> &mut Timeline {
        &mut self.timelines[device.ordinal(self.num_gpus)]
    }

    /// Iterates over the timelines in canonical device order.
    pub fn iter(&self) -> impl Iterator<Item = &Timeline> {
        self.timelines.iter()
    }

    /// The time at which every device is idle.
    pub fn finish_time(&self) -> SimTime {
        self.timelines
            .iter()
            .map(Timeline::ready_at)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// The makespan measured from the clock origin: the maximum finish time
    /// over **all** device timelines.
    pub fn makespan(&self) -> SimDuration {
        self.finish_time().elapsed_since(SimTime::ZERO)
    }

    /// The finish time considering only compute devices (CPU and GPUs).
    ///
    /// The paper's objective (Eq. 2) excludes in-flight transfers whose
    /// results are not consumed; this accessor supports that metric.
    pub fn compute_finish_time(&self) -> SimTime {
        self.timelines
            .iter()
            .filter(|tl| tl.device().is_compute())
            .map(Timeline::ready_at)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Per-device utilization over the current makespan, in canonical
    /// device order.
    pub fn utilizations(&self) -> Vec<(Device, f64)> {
        let horizon = self.makespan();
        self.timelines
            .iter()
            .map(|tl| (tl.device(), tl.utilization(horizon)))
            .collect()
    }

    /// Per-device busy times in canonical device order (the layout of
    /// step-metric busy vectors).
    pub fn busy_times(&self) -> Vec<SimDuration> {
        self.timelines.iter().map(Timeline::busy_time).collect()
    }
}

impl Default for TimelineSet {
    fn default() -> Self {
        TimelineSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_count;

    #[test]
    fn push_respects_release_time() {
        let mut tl = Timeline::new(Device::pcie(0));
        let release = SimTime::from_nanos(100);
        let (start, end) = tl.push(release, SimDuration::from_nanos(50), "xfer");
        assert_eq!(start, release);
        assert_eq!(end, SimTime::from_nanos(150));
    }

    #[test]
    fn push_respects_device_busy() {
        let mut tl = Timeline::new(Device::Cpu);
        tl.push(SimTime::ZERO, SimDuration::from_nanos(100), "a");
        let (start, _) = tl.push(SimTime::ZERO, SimDuration::from_nanos(10), "b");
        assert_eq!(start, SimTime::from_nanos(100));
        assert!(tl.is_well_formed());
    }

    #[test]
    fn peek_does_not_commit() {
        let tl = Timeline::new(Device::gpu(0));
        let before = tl.clone();
        let _ = tl.peek(SimTime::ZERO, SimDuration::from_nanos(42));
        assert_eq!(tl, before);
    }

    #[test]
    fn zero_length_op_does_not_advance() {
        let mut tl = Timeline::new(Device::gpu(0));
        tl.push(SimTime::ZERO, SimDuration::ZERO, "marker");
        assert_eq!(tl.ready_at(), SimTime::ZERO);
        assert_eq!(tl.intervals().len(), 1);
    }

    #[test]
    fn utilization_and_busy_time() {
        let mut tl = Timeline::new(Device::Cpu);
        tl.push(SimTime::ZERO, SimDuration::from_nanos(30), "a");
        tl.push(SimTime::from_nanos(70), SimDuration::from_nanos(30), "b");
        assert_eq!(tl.busy_time(), SimDuration::from_nanos(60));
        let util = tl.utilization(SimDuration::from_nanos(100));
        assert!((util - 0.6).abs() < 1e-9);
        assert_eq!(tl.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn timeline_set_makespan() {
        let mut set = TimelineSet::new();
        set.get_mut(Device::Cpu)
            .push(SimTime::ZERO, SimDuration::from_nanos(5), "c");
        set.get_mut(Device::gpu(0))
            .push(SimTime::ZERO, SimDuration::from_nanos(9), "g");
        set.get_mut(Device::pcie(0))
            .push(SimTime::ZERO, SimDuration::from_nanos(7), "p");
        assert_eq!(set.makespan(), SimDuration::from_nanos(9));
        assert_eq!(set.compute_finish_time(), SimTime::from_nanos(9));
        let utils = set.utilizations();
        assert!((utils[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_gpu_set_has_a_lane_per_gpu() {
        let mut set = TimelineSet::with_gpus(3);
        assert_eq!(set.num_gpus(), 3);
        assert_eq!(set.iter().count(), device_count(3));
        for g in 0..3 {
            set.get_mut(Device::gpu(g)).push(
                SimTime::ZERO,
                SimDuration::from_nanos(g as u64 + 1),
                "c",
            );
            set.get_mut(Device::pcie(g))
                .push(SimTime::ZERO, SimDuration::from_nanos(10), "x");
        }
        // Makespan is the max over all device timelines (PCIe included).
        assert_eq!(set.makespan(), SimDuration::from_nanos(10));
        // Compute finish excludes the PCIe tails.
        assert_eq!(set.compute_finish_time(), SimTime::from_nanos(3));
        assert_eq!(set.busy_times().len(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_gpu_rejected() {
        let set = TimelineSet::with_gpus(2);
        let _ = set.get(Device::gpu(2));
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = TimelineSet::with_gpus(0);
    }

    #[test]
    fn starting_at_offsets_all_devices() {
        let t0 = SimTime::from_nanos(500);
        let set = TimelineSet::starting_at_with_gpus(2, t0);
        assert_eq!(set.iter().count(), 5);
        for tl in set.iter() {
            assert_eq!(tl.ready_at(), t0);
        }
    }
}
