//! Simulation clock newtypes.
//!
//! All simulated time is kept as integer nanoseconds so that schedules are
//! deterministic and comparable across runs. [`SimTime`] is a point on the
//! simulated clock, [`SimDuration`] a span between two points; the two are
//! kept distinct so that e.g. adding two absolute times is a compile error.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of simulated time, stored as integer nanoseconds.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::SimDuration;
///
/// let d = SimDuration::from_micros(3) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 3_500);
/// assert!(d > SimDuration::ZERO);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs saturate to [`SimDuration::ZERO`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; returns [`SimDuration::ZERO`] on underflow.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    ///
    /// Non-finite or negative factors saturate to [`SimDuration::ZERO`].
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// A point on the simulated clock, measured from the start of the run.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.elapsed_since(SimTime::ZERO), SimDuration::from_millis(2));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the origin.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since an earlier time point.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn elapsed_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "elapsed_since of a later time");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two time points.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_nanos())
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn duration_from_secs_saturates_on_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(300);
        let b = SimDuration::from_nanos(200);
        assert_eq!((a + b).as_nanos(), 500);
        assert_eq!((a - b).as_nanos(), 100);
        assert_eq!((a * 3).as_nanos(), 900);
        assert_eq!((a / 3).as_nanos(), 100);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 15);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let u = t + SimDuration::from_micros(2);
        assert_eq!(u - t, SimDuration::from_micros(2));
        assert_eq!(u.elapsed_since(t), SimDuration::from_micros(2));
        assert_eq!(t.max(u), u);
        assert_eq!(t.min(u), t);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_millis(5_000).to_string(), "5.000s");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "@1.500us");
    }
}
