//! Skewed neuron-level activation baseline.
//!
//! Fig. 3(a) contrasts MoE expert activation with the neuron-level sparsity
//! of dense models (the OPT curve): neuron activations are heavily
//! concentrated on a small "hot" set, which is why LFU-style policies work
//! for PowerInfer but not for MoE. This module generates that baseline
//! curve from a Zipf-distributed activation model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a neuron-activation frequency profile and returns its cumulative
/// activation-share curve (same convention as
/// [`stats::activation_cdf`](crate::stats::activation_cdf)).
///
/// `neurons` is the population size, `zipf_s` the skew exponent (OPT-style
/// measurements correspond to `s ≈ 1.0`), `samples` the number of
/// activation events to draw.
///
/// # Example
///
/// ```
/// let cdf = hybrimoe_trace::neuron::neuron_activation_cdf(512, 1.0, 20_000, 1);
/// // Heavily skewed: the top 10% of neurons carry most activations.
/// let top10 = cdf[cdf.len() / 10 - 1];
/// assert!(top10 > 0.4, "top10 share {top10}");
/// ```
pub fn neuron_activation_cdf(neurons: usize, zipf_s: f64, samples: usize, seed: u64) -> Vec<f64> {
    assert!(neurons > 0, "population must be nonzero");
    // Zipf pmf over ranks 1..=neurons.
    let weights: Vec<f64> = (1..=neurons)
        .map(|r| 1.0 / (r as f64).powf(zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut counts = vec![0u64; neurons];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..samples {
        let mut u = rng.gen_range(0.0..total);
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                idx = i;
                break;
            }
            u -= w;
            idx = i;
        }
        counts[idx] += 1;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total_count: u64 = counts.iter().sum();
    let mut acc = 0u64;
    counts
        .iter()
        .map(|c| {
            acc += c;
            if total_count == 0 {
                0.0
            } else {
                acc as f64 / total_count as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_to_one() {
        let cdf = neuron_activation_cdf(128, 1.0, 5_000, 3);
        assert_eq!(cdf.len(), 128);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn neuron_curve_is_more_skewed_than_expert_curve() {
        use crate::TraceGenerator;
        use hybrimoe_model::ModelConfig;

        let neuron = neuron_activation_cdf(64, 1.1, 20_000, 5);
        let expert_trace = TraceGenerator::new(ModelConfig::deepseek(), 5).decode_trace(100);
        let expert = crate::stats::activation_cdf(&expert_trace);
        // Compare share covered by the top quarter of the population.
        let q_n = neuron[neuron.len() / 4 - 1];
        let q_e = expert[expert.len() / 4 - 1];
        assert!(q_n > q_e + 0.1, "neuron {q_n:.3} vs expert {q_e:.3}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = neuron_activation_cdf(32, 1.0, 1_000, 9);
        let b = neuron_activation_cdf(32, 1.0, 1_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zero_population_rejected() {
        let _ = neuron_activation_cdf(0, 1.0, 10, 1);
    }
}
