//! Activation statistics over traces — the measurements behind the paper's
//! motivation figures (Fig. 3).

use std::collections::HashSet;

use crate::ActivationTrace;

/// The cumulative activation-frequency curve of Fig. 3(a): experts sorted by
/// descending activation count, returning the cumulative share of all
/// activations covered by the top `i+1` experts.
///
/// A perfectly uniform model traces the diagonal; a skewed (neuron-like)
/// model shoots up early.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ModelConfig;
/// use hybrimoe_trace::{stats, TraceGenerator};
///
/// let t = TraceGenerator::new(ModelConfig::tiny_test(), 1).decode_trace(32);
/// let cdf = stats::activation_cdf(&t);
/// assert!((cdf.last().copied().unwrap() - 1.0).abs() < 1e-9);
/// ```
pub fn activation_cdf(trace: &ActivationTrace) -> Vec<f64> {
    let mut counts: Vec<u64> = Vec::new();
    for step in &trace.steps {
        for rec in &step.layers {
            let loads = rec.routing.loads();
            if counts.len() < loads.len() {
                counts.resize(loads.len(), 0);
            }
            for (i, l) in loads.iter().enumerate() {
                if *l > 0 {
                    counts[i] += 1;
                }
            }
        }
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0u64;
    counts
        .iter()
        .map(|c| {
            acc += c;
            acc as f64 / total as f64
        })
        .collect()
}

/// The reuse-probability-by-score-rank curve of Fig. 3(b): for each score
/// rank `r` (0 = highest mean router score at iteration `t`), the empirical
/// probability that the rank-`r` expert is activated at iteration `t+1`.
///
/// Returns one probability per expert rank. High-score experts reusing more
/// often is the signal that justifies MRS caching.
pub fn reuse_probability_by_rank(trace: &ActivationTrace) -> Vec<f64> {
    let mut hits: Vec<u64> = Vec::new();
    let mut totals: Vec<u64> = Vec::new();
    for w in trace.steps.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        for (l, rec) in prev.layers.iter().enumerate() {
            let Some(next_rec) = next.layers.get(l) else {
                continue;
            };
            let scores = rec.routing.mean_scores();
            let n = scores.len();
            if hits.len() < n {
                hits.resize(n, 0);
                totals.resize(n, 0);
            }
            let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let activated: HashSet<u16> = next_rec
                .routing
                .activated()
                .iter()
                .map(|(e, _)| e.0)
                .collect();
            for (rank, (expert, _)) in ranked.iter().enumerate() {
                totals[rank] += 1;
                if activated.contains(&(*expert as u16)) {
                    hits[rank] += 1;
                }
            }
        }
    }
    hits.iter()
        .zip(totals.iter())
        .map(|(h, t)| if *t == 0 { 0.0 } else { *h as f64 / *t as f64 })
        .collect()
}

/// The per-expert token loads of one layer of a prefill step (Fig. 3(c)).
///
/// Returns `None` if the step or layer does not exist.
pub fn workload_distribution(
    trace: &ActivationTrace,
    step: usize,
    layer: usize,
) -> Option<Vec<u32>> {
    Some(
        trace
            .steps
            .get(step)?
            .layers
            .get(layer)?
            .routing
            .loads()
            .to_vec(),
    )
}

/// Mean Jaccard similarity of activated-expert sets between adjacent layers
/// (the structure inter-layer prefetching exploits).
pub fn interlayer_similarity(trace: &ActivationTrace) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for step in &trace.steps {
        for w in step.layers.windows(2) {
            let a: HashSet<u16> = w[0].routing.activated().iter().map(|(e, _)| e.0).collect();
            let b: HashSet<u16> = w[1].routing.activated().iter().map(|(e, _)| e.0).collect();
            let inter = a.intersection(&b).count();
            let union = a.union(&b).count();
            if union > 0 {
                sum += inter as f64 / union as f64;
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Mean probability that an expert activated at iteration `t` is activated
/// again at `t+1` (temporal reuse).
pub fn temporal_reuse(trace: &ActivationTrace) -> f64 {
    let mut reused = 0usize;
    let mut total = 0usize;
    for w in trace.steps.windows(2) {
        for (l, rec) in w[0].layers.iter().enumerate() {
            let Some(next_rec) = w[1].layers.get(l) else {
                continue;
            };
            let a: HashSet<u16> = rec.routing.activated().iter().map(|(e, _)| e.0).collect();
            let b: HashSet<u16> = next_rec
                .routing
                .activated()
                .iter()
                .map(|(e, _)| e.0)
                .collect();
            reused += a.intersection(&b).count();
            total += a.len();
        }
    }
    if total == 0 {
        0.0
    } else {
        reused as f64 / total as f64
    }
}

/// The Gini coefficient of per-expert loads in a single routing (0 =
/// perfectly even, →1 = concentrated); used to characterize prefill
/// workload imbalance.
pub fn load_gini(loads: &[u32]) -> f64 {
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = loads.iter().map(|l| *l as u64).collect();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, v) in sorted.iter().enumerate() {
        weighted += (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * *v as f64;
    }
    weighted / (n as f64 * total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;
    use hybrimoe_model::ModelConfig;

    fn trace() -> ActivationTrace {
        TraceGenerator::new(ModelConfig::deepseek(), 21).decode_trace(40)
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = activation_cdf(&trace());
        assert!(!cdf.is_empty());
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_probability_decreases_with_rank() {
        let p = reuse_probability_by_rank(&trace());
        assert!(!p.is_empty());
        // Top-ranked experts must reuse more than bottom-ranked on average.
        let k = p.len() / 4;
        let head: f64 = p[..k].iter().sum::<f64>() / k as f64;
        let tail: f64 = p[p.len() - k..].iter().sum::<f64>() / k as f64;
        assert!(head > tail, "head {head:.3} tail {tail:.3}");
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn workload_distribution_shape() {
        let t = TraceGenerator::new(ModelConfig::deepseek(), 3).prefill_trace(128);
        let loads = workload_distribution(&t, 0, 0).unwrap();
        assert_eq!(loads.len(), 64);
        assert_eq!(loads.iter().sum::<u32>(), 128 * 6);
        assert!(workload_distribution(&t, 1, 0).is_none());
        assert!(workload_distribution(&t, 0, 99).is_none());
    }

    #[test]
    fn interlayer_similarity_above_chance() {
        let sim = interlayer_similarity(&trace());
        // Random 6-of-64 sets have Jaccard ~0.05; the residual stream
        // should push this well up.
        assert!(sim > 0.12, "similarity {sim:.3}");
        assert!(sim < 1.0);
    }

    #[test]
    fn temporal_reuse_in_unit_range() {
        let r = temporal_reuse(&trace());
        assert!((0.0..=1.0).contains(&r));
        assert!(r > 0.0);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(load_gini(&[]), 0.0);
        assert_eq!(load_gini(&[0, 0]), 0.0);
        assert!(load_gini(&[5, 5, 5, 5]).abs() < 1e-12);
        let skewed = load_gini(&[100, 0, 0, 0]);
        assert!(skewed > 0.7, "{skewed}");
    }

    #[test]
    fn empty_trace_statistics_are_zero() {
        let empty = ActivationTrace {
            model_name: "x".into(),
            seed: 0,
            steps: Vec::new(),
        };
        assert!(activation_cdf(&empty).is_empty());
        assert!(reuse_probability_by_rank(&empty).is_empty());
        assert_eq!(interlayer_similarity(&empty), 0.0);
        assert_eq!(temporal_reuse(&empty), 0.0);
    }
}
