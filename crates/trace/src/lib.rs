//! # hybrimoe-trace
//!
//! Synthetic MoE activation traces with the statistical structure the
//! HybriMoE paper measures on real models (§III):
//!
//! * **near-uniform long-run expert frequency** — unlike neuron-level
//!   sparsity, no small "hot set" exists (Fig. 3(a));
//! * **temporal correlation** — experts with high router scores now are
//!   likelier to be activated next iteration (Fig. 3(b)), the signal MRS
//!   caching exploits;
//! * **cross-layer similarity** — adjacent layers route similarly because
//!   the residual stream changes slowly, the signal prefetching exploits;
//! * **uneven prefill workload** — token loads per expert are highly skewed
//!   within one forward pass (Fig. 3(c)).
//!
//! The generator drives a latent hidden state through an AR(1) process
//! across layers and iterations and derives router logits from per-layer
//! random projections; all four properties emerge from that single
//! mechanism, mirroring how they arise in real transformers. Each trace
//! also records *predicted* routings for the next layers computed from the
//! **current** layer's hidden state — exactly the paper's prefetch
//! prediction mechanism (§IV-C) — so prediction accuracy decays naturally
//! with lookahead distance.
//!
//! ## Example
//!
//! ```
//! use hybrimoe_model::ModelConfig;
//! use hybrimoe_trace::TraceGenerator;
//!
//! let generator = TraceGenerator::new(ModelConfig::deepseek(), 42);
//! let trace = generator.decode_trace(16);
//! assert_eq!(trace.steps.len(), 16);
//! // Every step routes every layer:
//! assert_eq!(trace.steps[0].layers.len(), 26);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
mod generator;
pub mod neuron;
pub mod stats;
mod trace;

pub use datasets::{Dataset, LengthBucket};
pub use generator::{DecodeStream, TraceConfig, TraceGenerator};
pub use trace::{ActivationTrace, LayerRecord, TokenStates, TraceStep};
