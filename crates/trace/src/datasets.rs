//! Prompt-length distributions of the paper's evaluation datasets.
//!
//! The prefill experiments (Fig. 7) sample prompts "of different lengths
//! from multiple datasets, including MT Bench, Vicuna Bench and ChatGPT
//! Prompts" and report latency in buckets around 32/128/512/1024 tokens.
//! Only the *length* of a prompt affects the measured quantities, so the
//! datasets are modeled by their published length statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An evaluation dataset, modeled by its prompt-length distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// MT-Bench: multi-turn questions, medium-length prompts.
    MtBench,
    /// Vicuna-Bench: single-turn questions, short prompts.
    VicunaBench,
    /// ChatGPT-Prompts: role-play system prompts, short-to-long.
    ChatGptPrompts,
}

impl Dataset {
    /// All datasets used by the paper.
    pub const ALL: [Dataset; 3] = [
        Dataset::MtBench,
        Dataset::VicunaBench,
        Dataset::ChatGptPrompts,
    ];

    /// A short stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Dataset::MtBench => "mt-bench",
            Dataset::VicunaBench => "vicuna-bench",
            Dataset::ChatGptPrompts => "chatgpt-prompts",
        }
    }

    /// Log-normal parameters `(mu, sigma)` of the token-length
    /// distribution.
    fn lognormal_params(self) -> (f64, f64) {
        match self {
            // Medians ~64, ~45 and ~90 tokens with long right tails.
            Dataset::MtBench => (4.16, 0.80),
            Dataset::VicunaBench => (3.80, 0.55),
            Dataset::ChatGptPrompts => (4.50, 0.95),
        }
    }

    /// Samples `n` prompt lengths (tokens), clamped to `[4, 4096]`.
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_trace::Dataset;
    ///
    /// let lens = Dataset::MtBench.sample_lengths(100, 1);
    /// assert_eq!(lens.len(), 100);
    /// assert!(lens.iter().all(|l| (4..=4096).contains(l)));
    /// ```
    pub fn sample_lengths(self, n: usize, seed: u64) -> Vec<u32> {
        let (mu, sigma) = self.lognormal_params();
        let mut rng = StdRng::seed_from_u64(seed ^ (self as u64) << 32);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let len = (mu + sigma * z).exp();
                (len.round() as u32).clamp(4, 4096)
            })
            .collect()
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The prefill-length buckets of the paper's Fig. 7 (~32/128/512/1024).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LengthBucket {
    /// Around 32 tokens.
    B32,
    /// Around 128 tokens.
    B128,
    /// Around 512 tokens.
    B512,
    /// Around 1024 tokens.
    B1024,
}

impl LengthBucket {
    /// All buckets, ascending.
    pub const ALL: [LengthBucket; 4] = [
        LengthBucket::B32,
        LengthBucket::B128,
        LengthBucket::B512,
        LengthBucket::B1024,
    ];

    /// The nominal token count of the bucket.
    pub const fn tokens(self) -> u32 {
        match self {
            LengthBucket::B32 => 32,
            LengthBucket::B128 => 128,
            LengthBucket::B512 => 512,
            LengthBucket::B1024 => 1024,
        }
    }

    /// Buckets a sampled length to the nearest nominal size (log distance).
    pub fn of(length: u32) -> LengthBucket {
        let l = (length.max(1) as f64).ln();
        LengthBucket::ALL
            .into_iter()
            .min_by(|a, b| {
                let da = (l - (a.tokens() as f64).ln()).abs();
                let db = (l - (b.tokens() as f64).ln()).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty buckets")
    }
}

impl std::fmt::Display for LengthBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.tokens())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = Dataset::MtBench.sample_lengths(10, 7);
        let b = Dataset::MtBench.sample_lengths(10, 7);
        assert_eq!(a, b);
        let c = Dataset::MtBench.sample_lengths(10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn datasets_have_distinct_medians() {
        let med = |d: Dataset| {
            let mut l = d.sample_lengths(1001, 3);
            l.sort_unstable();
            l[500]
        };
        let v = med(Dataset::VicunaBench);
        let m = med(Dataset::MtBench);
        let c = med(Dataset::ChatGptPrompts);
        assert!(v < m && m < c, "medians {v} {m} {c}");
    }

    #[test]
    fn bucket_assignment() {
        assert_eq!(LengthBucket::of(30), LengthBucket::B32);
        assert_eq!(LengthBucket::of(100), LengthBucket::B128);
        assert_eq!(LengthBucket::of(400), LengthBucket::B512);
        assert_eq!(LengthBucket::of(2000), LengthBucket::B1024);
        assert_eq!(LengthBucket::of(0), LengthBucket::B32);
    }

    #[test]
    fn bucket_tokens_ascending() {
        let t: Vec<u32> = LengthBucket::ALL.iter().map(|b| b.tokens()).collect();
        assert_eq!(t, vec![32, 128, 512, 1024]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataset::MtBench.to_string(), "mt-bench");
        assert_eq!(LengthBucket::B512.to_string(), "512");
    }
}
