//! Trace data structures.

use hybrimoe_model::LayerRouting;
use serde::{Deserialize, Serialize};

/// One layer's record within a forward pass: the true routing plus the
/// predicted routings of the following layers (computed from *this* layer's
/// hidden state, as the paper's prefetcher does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRecord {
    /// The true routing of this layer.
    pub routing: LayerRouting,
    /// Predicted routings for the next layers (nearest first, up to the
    /// generator's lookahead depth). Predictions use the current hidden
    /// state on the later routers, so their accuracy decays with distance.
    pub predicted: Vec<LayerRouting>,
}

/// One forward pass: a single decode token or one prefill batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Tokens in this forward pass (1 for decode).
    pub tokens: u32,
    /// Per-layer records, in layer order.
    pub layers: Vec<LayerRecord>,
}

/// A recorded sequence of forward passes for one model.
///
/// Traces serialize to JSON so experiments can be replayed bit-for-bit.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ModelConfig;
/// use hybrimoe_trace::TraceGenerator;
///
/// let trace = TraceGenerator::new(ModelConfig::tiny_test(), 7).decode_trace(4);
/// let json = trace.to_json().unwrap();
/// let back = hybrimoe_trace::ActivationTrace::from_json(&json).unwrap();
/// assert_eq!(trace, back);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationTrace {
    /// Name of the model that produced the trace.
    pub model_name: String,
    /// Seed the generator used.
    pub seed: u64,
    /// The recorded forward passes.
    pub steps: Vec<TraceStep>,
}

impl ActivationTrace {
    /// Serializes the trace to JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Total number of layer records across all steps.
    pub fn layer_records(&self) -> usize {
        self.steps.iter().map(|s| s.layers.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_model::{LayerId, LayerRouting};

    fn tiny_trace() -> ActivationTrace {
        ActivationTrace {
            model_name: "t".to_owned(),
            seed: 1,
            steps: vec![TraceStep {
                tokens: 1,
                layers: vec![LayerRecord {
                    routing: LayerRouting::from_parts(LayerId(0), 1, vec![1, 0], vec![0.9, 0.1]),
                    predicted: Vec::new(),
                }],
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let t = tiny_trace();
        let json = t.to_json().unwrap();
        assert_eq!(ActivationTrace::from_json(&json).unwrap(), t);
    }

    #[test]
    fn layer_records_counts() {
        assert_eq!(tiny_trace().layer_records(), 1);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ActivationTrace::from_json("not json").is_err());
    }
}
