//! Trace data structures.

use hybrimoe_model::{LayerRouting, RouterOutput};
use serde::{Deserialize, Serialize};

/// Per-token hidden states and routing decisions at one layer — the
/// concrete inputs a real-execution backend needs to compute the layer's
/// numerical output (the analytic simulator only needs the aggregated
/// [`LayerRouting`]). Produced by
/// [`TraceGenerator::with_token_states`](crate::TraceGenerator::with_token_states);
/// deterministic per seed like everything else in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenStates {
    /// Per-token hidden-state input to the layer, `hidden` floats each,
    /// in batch order.
    pub inputs: Vec<Vec<f32>>,
    /// Per-token routing decisions, same order as `inputs`.
    pub routes: Vec<RouterOutput>,
}

impl TokenStates {
    /// Number of tokens recorded.
    pub fn tokens(&self) -> usize {
        self.inputs.len()
    }

    /// Appends another batch's states (continuous-batching merge): the
    /// other step's tokens follow this step's tokens, matching the order
    /// in which [`LayerRouting::merge`] adds their loads.
    pub fn merge(&mut self, other: &TokenStates) {
        self.inputs.extend(other.inputs.iter().cloned());
        self.routes.extend(other.routes.iter().cloned());
    }
}

/// One layer's record within a forward pass: the true routing plus the
/// predicted routings of the following layers (computed from *this* layer's
/// hidden state, as the paper's prefetcher does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRecord {
    /// The true routing of this layer.
    pub routing: LayerRouting,
    /// Predicted routings for the next layers (nearest first, up to the
    /// generator's lookahead depth). Predictions use the current hidden
    /// state on the later routers, so their accuracy decays with distance.
    pub predicted: Vec<LayerRouting>,
    /// Per-token hidden states and routes for real execution, when the
    /// trace was generated with
    /// [`TraceGenerator::with_token_states`](crate::TraceGenerator::with_token_states).
    /// `None` for simulation-only traces.
    pub states: Option<TokenStates>,
}

/// One forward pass: a single decode token or one prefill batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Tokens in this forward pass (1 for decode).
    pub tokens: u32,
    /// Per-layer records, in layer order.
    pub layers: Vec<LayerRecord>,
}

impl TraceStep {
    /// Merges the forward passes of several concurrent requests into the
    /// single batched pass a continuous-batching server runs: per layer,
    /// loads and score masses add up, and the predicted routings of the
    /// lookahead layers merge elementwise. All inputs must come from the
    /// same model (same layer count, expert count and lookahead depth).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or the steps' shapes disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_model::ModelConfig;
    /// use hybrimoe_trace::{TraceGenerator, TraceStep};
    ///
    /// let m = ModelConfig::tiny_test();
    /// let a = TraceGenerator::new(m.clone(), 1).decode_trace(1).steps.remove(0);
    /// let b = TraceGenerator::new(m, 2).decode_trace(1).steps.remove(0);
    /// let merged = TraceStep::merge(&[&a, &b]);
    /// assert_eq!(merged.tokens, 2);
    /// ```
    pub fn merge(steps: &[&TraceStep]) -> TraceStep {
        let (first, rest) = steps.split_first().expect("merging zero trace steps");
        let mut out = (*first).clone();
        for step in rest {
            assert_eq!(
                out.layers.len(),
                step.layers.len(),
                "merging steps of different models"
            );
            out.tokens += step.tokens;
            for (dst, src) in out.layers.iter_mut().zip(step.layers.iter()) {
                dst.routing.merge(&src.routing);
                assert_eq!(
                    dst.predicted.len(),
                    src.predicted.len(),
                    "merging steps with different lookahead depths"
                );
                for (p, q) in dst.predicted.iter_mut().zip(src.predicted.iter()) {
                    p.merge(q);
                }
                match (&mut dst.states, &src.states) {
                    (Some(d), Some(s)) => d.merge(s),
                    (None, None) => {}
                    _ => panic!("merging steps with and without token states"),
                }
            }
        }
        out
    }
}

/// A recorded sequence of forward passes for one model.
///
/// Traces serialize to JSON so experiments can be replayed bit-for-bit.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ModelConfig;
/// use hybrimoe_trace::TraceGenerator;
///
/// let trace = TraceGenerator::new(ModelConfig::tiny_test(), 7).decode_trace(4);
/// let json = trace.to_json().unwrap();
/// let back = hybrimoe_trace::ActivationTrace::from_json(&json).unwrap();
/// assert_eq!(trace, back);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationTrace {
    /// Name of the model that produced the trace.
    pub model_name: String,
    /// Seed the generator used.
    pub seed: u64,
    /// The recorded forward passes.
    pub steps: Vec<TraceStep>,
}

impl ActivationTrace {
    /// Serializes the trace to JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Total number of layer records across all steps.
    pub fn layer_records(&self) -> usize {
        self.steps.iter().map(|s| s.layers.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_model::{LayerId, LayerRouting};

    fn tiny_trace() -> ActivationTrace {
        ActivationTrace {
            model_name: "t".to_owned(),
            seed: 1,
            steps: vec![TraceStep {
                tokens: 1,
                layers: vec![LayerRecord {
                    routing: LayerRouting::from_parts(LayerId(0), 1, vec![1, 0], vec![0.9, 0.1]),
                    predicted: Vec::new(),
                    states: None,
                }],
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let t = tiny_trace();
        let json = t.to_json().unwrap();
        assert_eq!(ActivationTrace::from_json(&json).unwrap(), t);
    }

    #[test]
    fn layer_records_counts() {
        assert_eq!(tiny_trace().layer_records(), 1);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ActivationTrace::from_json("not json").is_err());
    }

    #[test]
    fn merge_sums_tokens_and_loads() {
        let step = |load| TraceStep {
            tokens: 1,
            layers: vec![LayerRecord {
                routing: LayerRouting::from_parts(LayerId(0), 1, vec![load, 0], vec![0.5, 0.5]),
                predicted: vec![LayerRouting::from_parts(
                    LayerId(1),
                    1,
                    vec![0, load],
                    vec![0.5, 0.5],
                )],
                states: None,
            }],
        };
        let (a, b) = (step(1), step(2));
        let merged = TraceStep::merge(&[&a, &b]);
        assert_eq!(merged.tokens, 2);
        assert_eq!(merged.layers[0].routing.loads(), &[3, 0]);
        assert_eq!(merged.layers[0].predicted[0].loads(), &[0, 3]);
    }

    #[test]
    fn merge_of_one_is_identity() {
        let t = tiny_trace();
        let merged = TraceStep::merge(&[&t.steps[0]]);
        assert_eq!(merged, t.steps[0]);
    }

    #[test]
    #[should_panic(expected = "zero trace steps")]
    fn merge_rejects_empty() {
        let _ = TraceStep::merge(&[]);
    }

    fn step_with_states(value: f32) -> TraceStep {
        TraceStep {
            tokens: 1,
            layers: vec![LayerRecord {
                routing: LayerRouting::from_parts(LayerId(0), 1, vec![1, 0], vec![0.9, 0.1]),
                predicted: Vec::new(),
                states: Some(TokenStates {
                    inputs: vec![vec![value; 4]],
                    routes: vec![RouterOutput::route(&[1.0, 0.0], 1)],
                }),
            }],
        }
    }

    #[test]
    fn merge_concatenates_token_states_in_part_order() {
        let (a, b) = (step_with_states(0.1), step_with_states(0.2));
        let merged = TraceStep::merge(&[&a, &b]);
        let states = merged.layers[0].states.as_ref().unwrap();
        assert_eq!(states.tokens(), 2);
        assert_eq!(states.inputs[0], vec![0.1; 4]);
        assert_eq!(states.inputs[1], vec![0.2; 4]);
        assert_eq!(states.routes.len(), 2);
    }

    #[test]
    #[should_panic(expected = "with and without token states")]
    fn merge_rejects_mixed_state_presence() {
        let a = step_with_states(0.1);
        let b = tiny_trace().steps.remove(0);
        let _ = TraceStep::merge(&[&a, &b]);
    }

    #[test]
    fn states_survive_json_round_trip() {
        let t = ActivationTrace {
            model_name: "t".to_owned(),
            seed: 1,
            steps: vec![step_with_states(0.3)],
        };
        let json = t.to_json().unwrap();
        assert_eq!(ActivationTrace::from_json(&json).unwrap(), t);
    }
}
