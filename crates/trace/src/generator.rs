//! The AR(1) hidden-state trace generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hybrimoe_model::{LayerId, LayerRouting, ModelConfig, RouterOutput};

use crate::{ActivationTrace, LayerRecord, TokenStates, TraceStep};

/// Tunable parameters of the synthetic activation process.
///
/// Defaults are chosen so the generated traces match the paper's measured
/// statistics: an expert-frequency CDF close to the diagonal (Fig. 3(a)),
/// reuse probability rising with score rank (Fig. 3(b)), and adjacent-layer
/// similarity high enough for prefetching to pay off.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// AR(1) coefficient of the hidden state across layers (residual-stream
    /// similarity). Higher → adjacent layers route more similarly.
    pub layer_correlation: f64,
    /// AR(1) coefficient of the hidden state across decode iterations
    /// (temporal continuity of language). Higher → more expert reuse.
    pub temporal_correlation: f64,
    /// Gain applied to router logits. Higher → sharper routing (more skew
    /// within an iteration).
    pub gate_gain: f64,
    /// AR(1) coefficient of the router projections across layers. Adjacent
    /// layers of trained MoE models route similarly ("high activation
    /// similarity between adjacent layers", §III); correlated projections
    /// reproduce that.
    pub projection_correlation: f64,
    /// Standard deviation of the persistent per-(layer, expert) popularity
    /// bias added to the router logits. Zero gives perfectly uniform
    /// long-run frequencies; the paper's Fig. 3(a) CDFs show mild skew.
    pub expert_bias: f64,
    /// Dimension of the latent hidden state.
    pub latent_dim: usize,
    /// How many future layers each record predicts (the paper uses 3).
    pub lookahead: usize,
    /// Correlation between tokens of one prefill prompt (shared topic).
    pub prompt_cohesion: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            layer_correlation: 0.82,
            temporal_correlation: 0.35,
            gate_gain: 2.2,
            projection_correlation: 0.72,
            expert_bias: 0.7,
            latent_dim: 32,
            lookahead: 3,
            prompt_cohesion: 0.55,
        }
    }
}

/// Generates deterministic synthetic activation traces for one model.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ModelConfig;
/// use hybrimoe_trace::TraceGenerator;
///
/// let g = TraceGenerator::new(ModelConfig::mixtral(), 1);
/// let a = g.decode_trace(8);
/// let b = g.decode_trace(8);
/// assert_eq!(a, b); // same seed → identical trace
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    model: ModelConfig,
    config: TraceConfig,
    seed: u64,
    capture_states: bool,
}

impl TraceGenerator {
    /// Creates a generator with default [`TraceConfig`].
    pub fn new(model: ModelConfig, seed: u64) -> Self {
        TraceGenerator {
            model,
            config: TraceConfig::default(),
            seed,
            capture_states: false,
        }
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(model: ModelConfig, seed: u64, config: TraceConfig) -> Self {
        TraceGenerator {
            model,
            config,
            seed,
            capture_states: false,
        }
    }

    /// Enables [`TokenStates`](crate::TokenStates) capture: every generated
    /// [`LayerRecord`] additionally carries each token's hidden-state input
    /// (expanded deterministically from the latent process to the model's
    /// hidden dimension) and its per-token [`RouterOutput`] — the inputs a
    /// real-execution backend needs. Capture draws no extra randomness, so
    /// the routings are bit-identical to the same seed without capture.
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_model::ModelConfig;
    /// use hybrimoe_trace::TraceGenerator;
    ///
    /// let model = ModelConfig::tiny_test();
    /// let g = TraceGenerator::new(model.clone(), 3).with_token_states();
    /// let t = g.decode_trace(1);
    /// let states = t.steps[0].layers[0].states.as_ref().unwrap();
    /// assert_eq!(states.tokens(), 1);
    /// assert_eq!(states.inputs[0].len(), model.routed_shape.hidden() as usize);
    /// ```
    pub fn with_token_states(mut self) -> Self {
        self.capture_states = true;
        self
    }

    /// The model this generator describes.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The generator configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Generates a decode trace: `iterations` autoregressive steps of one
    /// token each.
    ///
    /// Equivalent to draining [`TraceGenerator::decode_stream`] for
    /// `iterations` steps; the two produce bit-identical routings for the
    /// same seed.
    pub fn decode_trace(&self, iterations: usize) -> ActivationTrace {
        let mut stream = self.decode_stream();
        let steps = (0..iterations).map(|_| stream.next_step()).collect();
        ActivationTrace {
            model_name: self.model.name.clone(),
            seed: self.seed,
            steps,
        }
    }

    /// Opens an **incremental** decode stream: each call to
    /// [`DecodeStream::next_step`] produces the next autoregressive token's
    /// forward pass without pre-generating the whole trace. This is the
    /// per-request generation path of the serving layer, where a request's
    /// output length is not known up front.
    ///
    /// The token latent *and* every layer's innovation evolve with the
    /// temporal AR(1) coefficient, so the hidden state at **every** depth is
    /// equally correlated across iterations — fresh per-iteration layer
    /// noise would destroy temporal reuse in deep layers.
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_model::ModelConfig;
    /// use hybrimoe_trace::TraceGenerator;
    ///
    /// let g = TraceGenerator::new(ModelConfig::tiny_test(), 3);
    /// let mut stream = g.decode_stream();
    /// let step = stream.next_step();
    /// assert_eq!(step, g.decode_trace(1).steps[0]);
    /// ```
    pub fn decode_stream(&self) -> DecodeStream {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bundle = self.model_params(&mut rng);
        self.stream_from(bundle, rng)
    }

    /// Builds a decode stream from an already-derived parameter bundle and
    /// the rng positioned right after it — the single construction path
    /// that keeps [`decode_stream`](Self::decode_stream) and
    /// [`request`](Self::request) bit-identical on the decode side.
    fn stream_from(&self, bundle: ModelParams, mut rng: StdRng) -> DecodeStream {
        let d = self.config.latent_dim;
        let layers = self.model.layers as usize;
        let token_latent = gaussian_vec(&mut rng, d);
        let innovations: Vec<Vec<f64>> = (0..layers).map(|_| gaussian_vec(&mut rng, d)).collect();
        DecodeStream {
            generator: self.clone(),
            bundle,
            rng,
            token_latent,
            innovations,
        }
    }

    /// Generates a batched decode trace: `sequences` independent requests
    /// decoded in lockstep for `iterations` steps (small-batch serving).
    /// Each step routes `sequences` tokens, one per request, so per-expert
    /// loads range over `0..=sequences` — the intermediate regime between
    /// single-token decode and prefill.
    pub fn decode_trace_batched(&self, iterations: usize, sequences: u32) -> ActivationTrace {
        assert!(sequences > 0, "batch must contain at least one sequence");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xBA7C_4ED0);
        let bundle = self.model_params(&mut rng);
        let d = self.config.latent_dim;
        let rho_t = self.config.temporal_correlation;
        let layers = self.model.layers as usize;
        let n = sequences as usize;

        // Independent latent chains and per-layer innovations per sequence.
        let mut token_latents: Vec<Vec<f64>> = (0..n).map(|_| gaussian_vec(&mut rng, d)).collect();
        let mut innovations: Vec<Vec<Vec<f64>>> = (0..n)
            .map(|_| (0..layers).map(|_| gaussian_vec(&mut rng, d)).collect())
            .collect();

        let mut steps = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            for latent in &mut token_latents {
                evolve(latent, rho_t, &mut rng);
            }
            for seq in &mut innovations {
                for inno in seq.iter_mut() {
                    evolve(inno, rho_t, &mut rng);
                }
            }
            let layer_records =
                self.forward(&bundle, &token_latents, |t, l| innovations[t][l].clone());
            steps.push(TraceStep {
                tokens: sequences,
                layers: layer_records,
            });
        }
        ActivationTrace {
            model_name: self.model.name.clone(),
            seed: self.seed,
            steps,
        }
    }

    /// Generates a prefill pass as a single [`TraceStep`] — the serving
    /// layer's entry point, where a request's prompt is one step merged into
    /// the continuous batch.
    pub fn prefill_step(&self, tokens: u32) -> TraceStep {
        self.prefill_trace(tokens)
            .steps
            .pop()
            .expect("prefill trace has one step")
    }

    /// Generates a prefill trace: one forward pass over a batch of `tokens`
    /// prompt tokens.
    pub fn prefill_trace(&self, tokens: u32) -> ActivationTrace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_F111);
        let bundle = self.model_params(&mut rng);
        let step = self.prefill_step_with(&bundle, &mut rng, tokens);
        ActivationTrace {
            model_name: self.model.name.clone(),
            seed: self.seed,
            steps: vec![step],
        }
    }

    /// Opens a full request view: the prompt's prefill pass plus an
    /// incremental decode stream, sharing **one** set of per-seed router
    /// parameters — a request's prompt and output go through the same
    /// model weights, and deriving the parameter bundle once halves the
    /// per-request setup cost of a serving admission.
    ///
    /// The decode stream is bit-identical to
    /// [`TraceGenerator::decode_stream`]; the prefill pass routes with the
    /// decode-side parameters and therefore differs from
    /// [`TraceGenerator::prefill_trace`] (which draws its own bundle).
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_model::ModelConfig;
    /// use hybrimoe_trace::TraceGenerator;
    ///
    /// let g = TraceGenerator::new(ModelConfig::tiny_test(), 3);
    /// let (prefill, mut stream) = g.request(16);
    /// assert_eq!(prefill.tokens, 16);
    /// assert_eq!(stream.next_step(), g.decode_stream().next_step());
    /// ```
    pub fn request(&self, prompt_tokens: u32) -> (TraceStep, DecodeStream) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bundle = self.model_params(&mut rng);

        let mut prefill_rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_F111);
        let prefill = self.prefill_step_with(&bundle, &mut prefill_rng, prompt_tokens);
        (prefill, self.stream_from(bundle, rng))
    }

    /// [`TraceGenerator::request`] with the prompt split into
    /// decode-interleavable chunks of `chunk_size` tokens (ktransformers
    /// style): each chunk is its own [`TraceStep`] over a contiguous token
    /// range of the prompt, so a serving layer can run other requests'
    /// decode steps between chunks. A short remainder is merged into the
    /// final chunk (every chunk spans `[chunk_size, 2·chunk_size)` tokens)
    /// so no trailing sliver schedules as a decode-regime batch.
    ///
    /// The randomness is drawn in **exactly** the order of
    /// [`TraceGenerator::request`] and only the forward pass is sliced, so
    /// every token's latent, routes and captured hidden states are
    /// bit-identical to the unchunked prefill — chunking changes *when*
    /// tokens run, never *what* they compute. With `chunk_size >=
    /// prompt_tokens` the single chunk equals the unchunked prefill step.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_model::ModelConfig;
    /// use hybrimoe_trace::TraceGenerator;
    ///
    /// let g = TraceGenerator::new(ModelConfig::tiny_test(), 3);
    /// let (chunks, _) = g.request_chunked(80, 32);
    /// let tokens: Vec<u32> = chunks.iter().map(|c| c.tokens).collect();
    /// assert_eq!(tokens, vec![32, 48]); // 80 = 32 + 48, no 16-token sliver
    /// ```
    pub fn request_chunked(
        &self,
        prompt_tokens: u32,
        chunk_size: u32,
    ) -> (Vec<TraceStep>, DecodeStream) {
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bundle = self.model_params(&mut rng);

        let mut prefill_rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_F111);
        let chunks = self.prefill_chunks_with(&bundle, &mut prefill_rng, prompt_tokens, chunk_size);
        (chunks, self.stream_from(bundle, rng))
    }

    /// One prefill pass over `tokens` prompt tokens with the given router
    /// parameters, drawing latents from `rng`.
    fn prefill_step_with(&self, bundle: &ModelParams, rng: &mut StdRng, tokens: u32) -> TraceStep {
        let mut chunks = self.prefill_chunks_with(bundle, rng, tokens, tokens.max(1));
        debug_assert_eq!(chunks.len(), 1);
        chunks.pop().expect("a prefill pass has one chunk")
    }

    /// The shared prefill path: draws the whole prompt's randomness up
    /// front (topic, per-token latents, per-token per-layer innovations —
    /// the exact draw order of the unchunked prefill), then runs the
    /// forward pass once per contiguous `chunk_size` token span.
    fn prefill_chunks_with(
        &self,
        bundle: &ModelParams,
        rng: &mut StdRng,
        tokens: u32,
        chunk_size: u32,
    ) -> Vec<TraceStep> {
        let d = self.config.latent_dim;
        let cohesion = self.config.prompt_cohesion;
        let layers = self.model.layers as usize;

        // Tokens of one prompt share a topic latent plus private noise.
        let topic = gaussian_vec(rng, d);
        let latents: Vec<Vec<f64>> = (0..tokens)
            .map(|_| {
                let noise = gaussian_vec(rng, d);
                topic
                    .iter()
                    .zip(noise.iter())
                    .map(|(t, n)| cohesion * t + (1.0 - cohesion * cohesion).sqrt() * n)
                    .collect()
            })
            .collect();
        // Per-token, per-layer innovations (a single pass: no temporal
        // dimension to correlate).
        let innovations: Vec<Vec<Vec<f64>>> = (0..tokens as usize)
            .map(|_| (0..layers).map(|_| gaussian_vec(rng, d)).collect())
            .collect();

        let n = tokens as usize;
        let size = (chunk_size as usize).max(1);
        let mut steps = Vec::with_capacity(n / size + 1);
        let mut start = 0usize;
        while start < n {
            let remaining = n - start;
            // Merge a short remainder into this chunk instead of emitting
            // a trailing sliver.
            let take = if remaining < 2 * size {
                remaining
            } else {
                size
            };
            let records = self.forward(bundle, &latents[start..start + take], |t, l| {
                innovations[start + t][l].clone()
            });
            steps.push(TraceStep {
                tokens: take as u32,
                layers: records,
            });
            start += take;
        }
        if steps.is_empty() {
            // A zero-token prompt still produces one (empty) forward pass,
            // matching the unchunked path.
            let records = self.forward(bundle, &[], |_, _| Vec::new());
            steps.push(TraceStep {
                tokens: 0,
                layers: records,
            });
        }
        steps
    }

    /// The per-seed model parameters: router projections (AR(1)-correlated
    /// across layers) and a persistent per-(layer, expert) popularity bias.
    fn model_params(&self, rng: &mut StdRng) -> ModelParams {
        let e = self.model.routed_experts as usize;
        let d = self.config.latent_dim;
        let rho = self.config.projection_correlation;
        let noise_scale = (1.0 - rho * rho).max(0.0).sqrt();
        let mut current: Vec<f64> = (0..e * d).map(|_| gaussian(rng)).collect();
        let mut projections = Vec::with_capacity(self.model.layers as usize);
        projections.push(current.clone());
        for _ in 1..self.model.layers {
            for v in current.iter_mut() {
                *v = rho * *v + noise_scale * gaussian(rng);
            }
            projections.push(current.clone());
        }
        let biases: Vec<Vec<f64>> = (0..self.model.layers)
            .map(|_| {
                (0..e)
                    .map(|_| self.config.expert_bias * gaussian(rng))
                    .collect()
            })
            .collect();
        ModelParams {
            projections,
            biases,
        }
    }

    /// Runs the latent process through all layers for a batch of token
    /// latents, producing true and predicted routings. `innovation(t, l)`
    /// supplies the layer-transition noise of token `t` entering layer
    /// `l+1`.
    fn forward(
        &self,
        params: &ModelParams,
        token_latents: &[Vec<f64>],
        innovation: impl Fn(usize, usize) -> Vec<f64>,
    ) -> Vec<LayerRecord> {
        let layers = self.model.layers as usize;
        let k = self.model.activated_experts as usize;
        let experts = self.model.routed_experts;
        let rho_l = self.config.layer_correlation;
        let noise_scale = (1.0 - rho_l * rho_l).max(0.0).sqrt();

        // Per-token hidden state evolving across layers.
        let mut hidden: Vec<Vec<f64>> = token_latents.to_vec();
        let mut records = Vec::with_capacity(layers);
        let model_hidden = self.model.routed_shape.hidden() as usize;
        for l in 0..layers {
            // True routing from the current hidden states.
            let outputs: Vec<RouterOutput> = hidden
                .iter()
                .map(|h| RouterOutput::route(&self.logits(params, l, h), k))
                .collect();
            let routing = LayerRouting::from_tokens(LayerId(l as u16), experts, &outputs);

            // Real-execution inputs: the latent expanded to the model's
            // hidden dimension plus this layer's per-token routes. Captured
            // *before* the latent evolves, so the states are the layer's
            // actual inputs.
            let states = self.capture_states.then(|| TokenStates {
                inputs: hidden
                    .iter()
                    .map(|h| expand_latent(h, model_hidden))
                    .collect(),
                routes: outputs.clone(),
            });

            // Predicted routings: current hidden state through the *later*
            // routers (paper Fig. 6).
            let mut predicted = Vec::new();
            for ahead in 1..=self.config.lookahead {
                if l + ahead >= layers {
                    break;
                }
                let pred_outputs: Vec<RouterOutput> = hidden
                    .iter()
                    .map(|h| RouterOutput::route(&self.logits(params, l + ahead, h), k))
                    .collect();
                predicted.push(LayerRouting::from_tokens(
                    LayerId((l + ahead) as u16),
                    experts,
                    &pred_outputs,
                ));
            }
            records.push(LayerRecord {
                routing,
                predicted,
                states,
            });

            // Evolve each token's hidden state into the next layer.
            for (t, h) in hidden.iter_mut().enumerate() {
                let inno = innovation(t, l);
                for (v, n) in h.iter_mut().zip(inno.iter()) {
                    *v = rho_l * *v + noise_scale * n;
                }
            }
        }
        records
    }

    /// Router logits for one token at one layer.
    fn logits(&self, params: &ModelParams, layer: usize, hidden: &[f64]) -> Vec<f32> {
        let d = self.config.latent_dim;
        let e = self.model.routed_experts as usize;
        let norm = (d as f64).sqrt();
        let projection = &params.projections[layer];
        let bias = &params.biases[layer];
        (0..e)
            .map(|i| {
                let row = &projection[i * d..(i + 1) * d];
                let dot: f64 = row.iter().zip(hidden.iter()).map(|(a, b)| a * b).sum();
                (self.config.gate_gain * dot / norm + bias[i]) as f32
            })
            .collect()
    }
}

/// Per-seed router parameters.
#[derive(Debug, Clone)]
struct ModelParams {
    /// Per-layer projection matrices, `experts x latent_dim`.
    projections: Vec<Vec<f64>>,
    /// Per-layer, per-expert popularity biases.
    biases: Vec<Vec<f64>>,
}

/// An incremental autoregressive decode: one [`TraceStep`] per call, with
/// the AR(1) hidden state carried across calls. Obtained from
/// [`TraceGenerator::decode_stream`]; also usable as an [`Iterator`]
/// (infinite — bound it with `take`).
#[derive(Debug, Clone)]
pub struct DecodeStream {
    generator: TraceGenerator,
    bundle: ModelParams,
    rng: StdRng,
    token_latent: Vec<f64>,
    innovations: Vec<Vec<f64>>,
}

impl DecodeStream {
    /// Advances the latent process one iteration and routes the next token
    /// through every layer.
    pub fn next_step(&mut self) -> TraceStep {
        let rho_t = self.generator.config.temporal_correlation;
        evolve(&mut self.token_latent, rho_t, &mut self.rng);
        for inno in &mut self.innovations {
            evolve(inno, rho_t, &mut self.rng);
        }
        let layer_records = self.generator.forward(
            &self.bundle,
            std::slice::from_ref(&self.token_latent),
            |_, l| self.innovations[l].clone(),
        );
        TraceStep {
            tokens: 1,
            layers: layer_records,
        }
    }

    /// The model this stream decodes for.
    pub fn model(&self) -> &ModelConfig {
        &self.generator.model
    }
}

impl Iterator for DecodeStream {
    type Item = TraceStep;

    fn next(&mut self) -> Option<TraceStep> {
        Some(self.next_step())
    }
}

/// Expands a latent vector to the model's hidden dimension: each repetition
/// block reuses the latent at a decaying scale, keeping the magnitude in
/// the ~0.1 range the quantized kernels are exercised with. Deterministic
/// (no randomness), so token states replay bit-for-bit.
fn expand_latent(latent: &[f64], hidden: usize) -> Vec<f32> {
    if latent.is_empty() {
        return vec![0.0; hidden];
    }
    let d = latent.len();
    (0..hidden)
        .map(|i| (latent[i % d] * 0.1 / (1 + i / d) as f64) as f32)
        .collect()
}

/// One AR(1) step: `h ← ρ·h + sqrt(1-ρ²)·ε` (keeps unit variance).
fn evolve(h: &mut [f64], rho: f64, rng: &mut StdRng) {
    let noise_scale = (1.0 - rho * rho).max(0.0).sqrt();
    for v in h.iter_mut() {
        *v = rho * *v + noise_scale * gaussian(rng);
    }
}

/// A standard normal sample (Box-Muller, deterministic from the rng).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn gaussian_vec(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| gaussian(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_model::ModelConfig;

    #[test]
    fn decode_trace_shape() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 3);
        let t = g.decode_trace(5);
        assert_eq!(t.steps.len(), 5);
        for step in &t.steps {
            assert_eq!(step.tokens, 1);
            assert_eq!(step.layers.len(), 4);
            for rec in &step.layers {
                assert_eq!(rec.routing.loads().len(), 8);
                // One token activates exactly K experts with load 1.
                assert_eq!(rec.routing.loads().iter().sum::<u32>(), 2);
                assert!(rec.routing.loads().iter().all(|l| *l <= 1));
            }
        }
    }

    #[test]
    fn lookahead_truncates_at_model_end() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 3);
        let t = g.decode_trace(1);
        let layers = &t.steps[0].layers;
        assert_eq!(layers[0].predicted.len(), 3);
        assert_eq!(layers[1].predicted.len(), 2);
        assert_eq!(layers[3].predicted.len(), 0);
        // Predicted layer ids are consecutive.
        assert_eq!(layers[0].predicted[0].layer(), LayerId(1));
        assert_eq!(layers[0].predicted[2].layer(), LayerId(3));
    }

    #[test]
    fn batched_decode_shape_and_loads() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 7);
        let t = g.decode_trace_batched(3, 4);
        assert_eq!(t.steps.len(), 3);
        for step in &t.steps {
            assert_eq!(step.tokens, 4);
            for rec in &step.layers {
                // 4 sequences x top-2 routing.
                assert_eq!(rec.routing.loads().iter().sum::<u32>(), 8);
                assert!(rec.routing.loads().iter().all(|l| *l <= 4));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn batched_decode_rejects_empty_batch() {
        let _ = TraceGenerator::new(ModelConfig::tiny_test(), 7).decode_trace_batched(1, 0);
    }

    #[test]
    fn decode_stream_matches_decode_trace() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 21);
        let trace = g.decode_trace(6);
        let streamed: Vec<TraceStep> = g.decode_stream().take(6).collect();
        assert_eq!(trace.steps, streamed);
    }

    #[test]
    fn decode_stream_is_stateful() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 23);
        let mut s = g.decode_stream();
        let a = s.next_step();
        let b = s.next_step();
        // Consecutive steps are distinct draws of the same process.
        assert_ne!(a, b);
        assert_eq!(s.model().name, "tiny-test");
    }

    #[test]
    fn prefill_step_is_the_trace_step() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 25);
        assert_eq!(g.prefill_step(16), g.prefill_trace(16).steps[0]);
        assert_eq!(g.prefill_step(16).tokens, 16);
    }

    #[test]
    fn request_decode_half_matches_decode_stream() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 27);
        let (prefill, stream) = g.request(8);
        assert_eq!(prefill.tokens, 8);
        assert_eq!(prefill.layers.len(), 4);
        // One token of a request's prompt activates exactly K experts.
        assert_eq!(prefill.layers[0].routing.loads().iter().sum::<u32>(), 16);
        let streamed: Vec<TraceStep> = stream.take(4).collect();
        let reference: Vec<TraceStep> = g.decode_stream().take(4).collect();
        assert_eq!(streamed, reference);
    }

    #[test]
    fn chunked_request_with_one_chunk_equals_request() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 31).with_token_states();
        let (prefill, mut stream) = g.request(40);
        let (chunks, mut chunked_stream) = g.request_chunked(40, 64);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], prefill);
        assert_eq!(chunked_stream.next_step(), stream.next_step());
    }

    #[test]
    fn chunked_request_slices_the_same_tokens() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 37).with_token_states();
        let (prefill, _) = g.request(80);
        let (chunks, _) = g.request_chunked(80, 32);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].tokens, 32);
        assert_eq!(chunks[1].tokens, 48);
        for l in 0..prefill.layers.len() {
            // Per-token hidden states and routes concatenate back exactly.
            let full = prefill.layers[l].states.as_ref().unwrap();
            let mut token = 0usize;
            for chunk in &chunks {
                let part = chunk.layers[l].states.as_ref().unwrap();
                for (i, input) in part.inputs.iter().enumerate() {
                    assert_eq!(*input, full.inputs[token + i]);
                    assert_eq!(part.routes[i], full.routes[token + i]);
                }
                token += part.inputs.len();
            }
            assert_eq!(token, 80);
            // Integer loads add back to the unchunked routing.
            let mut loads = vec![0u32; prefill.layers[l].routing.loads().len()];
            for chunk in &chunks {
                for (acc, c) in loads.iter_mut().zip(chunk.layers[l].routing.loads()) {
                    *acc += c;
                }
            }
            assert_eq!(loads, prefill.layers[l].routing.loads());
        }
    }

    #[test]
    fn chunk_remainder_merges_into_last_chunk() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 39);
        // 100 = 32 + 32 + 36: the 4-token sliver rides with the last chunk.
        let (chunks, _) = g.request_chunked(100, 32);
        let tokens: Vec<u32> = chunks.iter().map(|c| c.tokens).collect();
        assert_eq!(tokens, vec![32, 32, 36]);
        assert!(tokens.iter().all(|t| *t >= 32 && *t < 64));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_size_rejected() {
        let _ = TraceGenerator::new(ModelConfig::tiny_test(), 41).request_chunked(64, 0);
    }

    #[test]
    fn request_is_deterministic_per_seed() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 29);
        let (p1, mut s1) = g.request(8);
        let (p2, mut s2) = g.request(8);
        assert_eq!(p1, p2);
        assert_eq!(s1.next_step(), s2.next_step());
    }

    #[test]
    fn prefill_loads_sum_to_tokens_times_k() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 9);
        let t = g.prefill_trace(32);
        let rec = &t.steps[0].layers[0];
        assert_eq!(rec.routing.tokens(), 32);
        assert_eq!(rec.routing.loads().iter().sum::<u32>(), 32 * 2);
    }

    #[test]
    fn token_state_capture_does_not_change_routings() {
        let m = ModelConfig::tiny_test();
        let plain = TraceGenerator::new(m.clone(), 33).decode_trace(4);
        let with = TraceGenerator::new(m.clone(), 33)
            .with_token_states()
            .decode_trace(4);
        assert_eq!(plain.steps.len(), with.steps.len());
        for (p, w) in plain.steps.iter().zip(with.steps.iter()) {
            for (pl, wl) in p.layers.iter().zip(w.layers.iter()) {
                assert_eq!(pl.routing, wl.routing);
                assert_eq!(pl.predicted, wl.predicted);
                assert!(pl.states.is_none());
                let states = wl.states.as_ref().unwrap();
                assert_eq!(states.tokens() as u32, w.tokens);
                assert!(states
                    .inputs
                    .iter()
                    .all(|x| x.len() == m.routed_shape.hidden() as usize));
                // The per-token routes aggregate back to the layer routing.
                let rebuilt = hybrimoe_model::LayerRouting::from_tokens(
                    wl.routing.layer(),
                    m.routed_experts,
                    &states.routes,
                );
                assert_eq!(rebuilt, wl.routing);
            }
        }
    }

    #[test]
    fn request_captures_states_for_prefill_and_decode() {
        let g = TraceGenerator::new(ModelConfig::tiny_test(), 35).with_token_states();
        let (prefill, mut stream) = g.request(8);
        let states = prefill.layers[0].states.as_ref().unwrap();
        assert_eq!(states.tokens(), 8);
        assert!(states.inputs.iter().any(|x| x.iter().any(|v| *v != 0.0)));
        let step = stream.next_step();
        assert_eq!(step.layers[0].states.as_ref().unwrap().tokens(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = ModelConfig::tiny_test();
        let a = TraceGenerator::new(m.clone(), 5).decode_trace(3);
        let b = TraceGenerator::new(m.clone(), 5).decode_trace(3);
        assert_eq!(a, b);
        let c = TraceGenerator::new(m, 6).decode_trace(3);
        assert_ne!(a, c);
    }

    #[test]
    fn nearer_predictions_are_more_accurate() {
        // Measure top-K overlap between predicted and true routings at
        // distance 1 vs distance 3: distance 1 must be at least as accurate.
        let g = TraceGenerator::new(ModelConfig::deepseek(), 11);
        let t = g.decode_trace(60);
        let mut overlap = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for step in &t.steps {
            for (l, rec) in step.layers.iter().enumerate() {
                for (d, pred) in rec.predicted.iter().enumerate() {
                    let target = &step.layers[l + d + 1].routing;
                    let true_set: std::collections::HashSet<u16> =
                        target.activated().iter().map(|(e, _)| e.0).collect();
                    let pred_set: std::collections::HashSet<u16> =
                        pred.activated().iter().map(|(e, _)| e.0).collect();
                    let inter = true_set.intersection(&pred_set).count();
                    overlap[d] += inter as f64 / true_set.len().max(1) as f64;
                    counts[d] += 1;
                }
            }
        }
        let acc: Vec<f64> = (0..3).map(|d| overlap[d] / counts[d] as f64).collect();
        assert!(
            acc[0] >= acc[2],
            "accuracy should decay with distance: {acc:?}"
        );
        // Distance-1 prediction must be usefully better than chance
        // (random K of 64 would overlap ~9%).
        assert!(acc[0] > 0.3, "distance-1 accuracy too low: {acc:?}");
    }

    #[test]
    fn temporal_reuse_above_chance() {
        // The probability that an activated expert is activated again next
        // iteration must exceed the uniform baseline K/N.
        let m = ModelConfig::deepseek();
        let g = TraceGenerator::new(m.clone(), 13);
        let t = g.decode_trace(80);
        let mut reused = 0usize;
        let mut total = 0usize;
        for w in t.steps.windows(2) {
            for l in 0..w[0].layers.len() {
                let a: std::collections::HashSet<u16> = w[0].layers[l]
                    .routing
                    .activated()
                    .iter()
                    .map(|(e, _)| e.0)
                    .collect();
                let b: std::collections::HashSet<u16> = w[1].layers[l]
                    .routing
                    .activated()
                    .iter()
                    .map(|(e, _)| e.0)
                    .collect();
                reused += a.intersection(&b).count();
                total += a.len();
            }
        }
        let reuse_rate = reused as f64 / total as f64;
        let chance = m.activated_experts as f64 / m.routed_experts as f64;
        assert!(
            reuse_rate > 1.5 * chance,
            "reuse {reuse_rate:.3} vs chance {chance:.3}"
        );
    }

    #[test]
    fn long_run_frequencies_are_not_too_skewed() {
        // Fig. 3(a): expert frequency CDF is far flatter than neuron-level
        // sparsity. Check the top 20% of experts carry less than half of
        // all activations.
        let m = ModelConfig::deepseek();
        let g = TraceGenerator::new(m.clone(), 17);
        let t = g.decode_trace(120);
        let mut counts = vec![0u64; m.routed_experts as usize];
        for step in &t.steps {
            for rec in &step.layers {
                for (e, _) in rec.routing.activated() {
                    counts[e.0 as usize] += 1;
                }
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top20: u64 = counts.iter().take(counts.len() / 5).sum();
        let share = top20 as f64 / total as f64;
        assert!(share < 0.5, "top-20% share too skewed: {share:.3}");
    }
}
