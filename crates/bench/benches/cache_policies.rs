//! Cache policy overhead: one full decode iteration of cache maintenance
//! (routing note + lookups + demand inserts) for each replacement policy.
//! MRS must stay within the same order of magnitude as LRU/LFU for its
//! hit-rate gains to be free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrimoe_cache::{CachePolicy, ExpertCache, Lfu, Lru, Mrs};
use hybrimoe_model::{ExpertKey, ModelConfig};
use hybrimoe_trace::TraceGenerator;

type PolicyFactory = fn() -> Box<dyn CachePolicy>;

fn bench_policies(c: &mut Criterion) {
    let model = ModelConfig::deepseek();
    let trace = TraceGenerator::new(model.clone(), 7).decode_trace(8);
    let mut group = c.benchmark_group("cache_decode_iteration");

    let make: [(&str, PolicyFactory); 3] = [
        ("lru", || Box::new(Lru::new())),
        ("lfu", || Box::new(Lfu::new())),
        ("mrs", || Box::new(Mrs::new(0.3))),
    ];
    for (name, factory) in make {
        group.bench_with_input(BenchmarkId::new(name, "deepseek"), &trace, |b, trace| {
            b.iter(|| {
                let mut cache = ExpertCache::new(model.cache_capacity_for_ratio(0.3), factory());
                for step in &trace.steps {
                    for rec in &step.layers {
                        cache.note_routing(&rec.routing, model.activated_experts);
                        for (expert, _) in rec.routing.activated() {
                            let key = ExpertKey::new(rec.routing.layer(), expert);
                            if !cache.lookup(key) {
                                cache.insert(key);
                            }
                        }
                    }
                }
                std::hint::black_box(cache.stats())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_policies
}
criterion_main!(benches);
