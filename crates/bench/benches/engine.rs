//! End-to-end engine throughput: simulated decode steps per wall-clock
//! second. This bounds how much faster than real time the experiment
//! harness runs, i.e. how cheap a full Fig. 7/8 sweep is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_decode_8_steps");
    for (name, model) in [
        ("deepseek", ModelConfig::deepseek()),
        ("mixtral", ModelConfig::mixtral()),
    ] {
        let trace = TraceGenerator::new(model.clone(), 5).decode_trace(8);
        for framework in [Framework::HybriMoe, Framework::KTransformers] {
            let model = model.clone();
            group.bench_with_input(
                BenchmarkId::new(framework.name(), name),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        let mut engine =
                            Engine::new(EngineConfig::preset(framework, model.clone(), 0.25));
                        std::hint::black_box(engine.run(trace))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine
}
criterion_main!(benches);
