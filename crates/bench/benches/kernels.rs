//! Compute kernel throughput: quantized GEMV / batched GEMM / expert FFN
//! forward. These are the numbers the warmup calibration feeds into the
//! cost model, so they double as a sanity check that the calibrated
//! CPU GFLOP/s is self-consistent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hybrimoe_kernels::{ExpertFfn, QuantizedMatrix};

fn bench_qgemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("qgemv");
    for (rows, cols) in [(256usize, 256usize), (512, 512)] {
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i % 97) as f32 - 48.0) / 50.0)
            .collect();
        let q = QuantizedMatrix::quantize(&w, rows, cols).unwrap();
        let x: Vec<f32> = (0..cols).map(|i| ((i % 13) as f32 - 6.0) / 7.0).collect();
        group.throughput(Throughput::Elements((rows * cols) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &q,
            |b, q| {
                let mut y = vec![0.0f32; rows];
                b.iter(|| q.qgemv(std::hint::black_box(&x), &mut y, 1));
            },
        );
    }
    group.finish();
}

fn bench_ffn(c: &mut Criterion) {
    let mut group = c.benchmark_group("expert_ffn_forward");
    let ffn = ExpertFfn::random(256, 384, 3);
    let x = vec![0.1f32; 256];
    group.throughput(Throughput::Elements(ffn.flops_per_token()));
    group.bench_function("single_token", |b| {
        b.iter(|| ffn.forward(std::hint::black_box(&x)));
    });
    let batch: Vec<f32> = vec![0.1f32; 8 * 256];
    group.bench_function("batch_8", |b| {
        b.iter(|| ffn.forward_batch(std::hint::black_box(&batch), 8, 1));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_qgemv, bench_ffn
}
criterion_main!(benches);
