//! Scheduling decision overhead: the paper's scheduler must be cheap enough
//! to run per layer in real time (§IV-B calls the simulation "greedy" and
//! "minimal overhead"). This bench measures one scheduling decision for
//! realistic task-set sizes (Mixtral: 8 experts; DeepSeek/Qwen2: up to 64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hybrimoe_hw::{AffineCostModel, Platform};
use hybrimoe_model::{ExpertId, LayerId, ModelConfig};
use hybrimoe_sched::baselines::{FixedMappingScheduler, GpuOnlyScheduler};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};

fn tasks(n: u16, seed: u64) -> Vec<ExpertTask> {
    let mut state = seed;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ExpertTask {
                expert: ExpertId(i),
                load: 1 + (state >> 33) as u32 % 16,
                cached: (state >> 17).is_multiple_of(2),
            }
        })
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let model = ModelConfig::deepseek();
    let mut group = c.benchmark_group("schedule_one_layer");
    for n in [8u16, 16, 32, 64] {
        let ts = tasks(n, 42);
        let ctx = ScheduleContext::new(
            LayerId(0),
            64,
            &ts,
            model.routed_profile(),
            model.shared_profile(),
            &cost,
        );
        group.bench_with_input(BenchmarkId::new("hybrid", n), &ctx, |b, ctx| {
            let s = HybridScheduler::new();
            b.iter(|| s.schedule(std::hint::black_box(ctx)));
        });
        group.bench_with_input(BenchmarkId::new("fixed", n), &ctx, |b, ctx| {
            let s = FixedMappingScheduler::new();
            b.iter(|| s.schedule(std::hint::black_box(ctx)));
        });
        group.bench_with_input(BenchmarkId::new("gpu_only", n), &ctx, |b, ctx| {
            let s = GpuOnlyScheduler::new();
            b.iter(|| s.schedule(std::hint::black_box(ctx)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_schedulers
}
criterion_main!(benches);
