//! # hybrimoe-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! HybriMoE paper's evaluation (see DESIGN.md §4 for the index). Each
//! binary prints the same rows/series the paper reports:
//!
//! | binary | artifact |
//! |---|---|
//! | `table2` | Table II — model configurations |
//! | `fig1`   | Fig. 1 — on-demand vs unbalanced vs balanced timelines |
//! | `fig3`   | Fig. 3(a)–(f) — motivation measurements |
//! | `fig5`   | Fig. 5 — worked scheduling example |
//! | `table3` | Table III — ablation breakdown |
//! | `fig7`   | Fig. 7 — prefill latency across lengths and cache ratios |
//! | `fig8`   | Fig. 8 — decode latency across cache ratios |
//! | `fig9`   | Fig. 9 — MRS vs LRU cache hit rates |
//!
//! Run them with `cargo run -p hybrimoe-bench --release --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod server_bench;

pub use chaos::{run_chaos_bench, ChaosSummary};
pub use server_bench::{run_server_bench, ServerLoad};

use std::time::Instant;

use hybrimoe::realexec::{RealExecOptions, RealLayerExecutor};
use hybrimoe::remote::{RemoteLayerExecutor, RemoteWorkerOptions};
use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeReport, ServeSim, ServeSummary};
use hybrimoe::{
    Engine, EngineConfig, Framework, PrefetcherKind, StageMetrics, DEFAULT_PREFETCH_LOOKAHEAD,
};
use hybrimoe_hw::UnitCostModel;
use hybrimoe_kernels::KernelBackendKind;
use hybrimoe_model::{ExpertShape, LayerId, LayerRouting, ModelConfig, RouterOutput};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, SchedulePlan, Scheduler};
use hybrimoe_trace::TraceGenerator;
use hybrimoe_worker::{Endpoint, WorkerServer, WorkerServerOptions};
use serde::{Deserialize, Serialize};

/// Number of decode steps used by the decode experiments.
pub const DECODE_STEPS: usize = 32;

/// The cache ratios of Figs. 7 and 8.
pub const CACHE_RATIOS: [f64; 3] = [0.25, 0.50, 0.75];

/// The default measurement seed (printed by every binary for
/// reproducibility).
pub const SEED: u64 = 0x5EED_2025;

/// Arrival rates of the serving sweep, in requests per second.
pub const SERVE_ARRIVAL_RATES: [f64; 3] = [2.0, 5.0, 10.0];

/// Cache ratios of the serving sweep (the paper's tight and middle
/// points).
pub const SERVE_CACHE_RATIOS: [f64; 2] = [0.25, 0.50];

/// GPU counts of the serving sweep (expert sharding across shards).
pub const SERVE_GPU_COUNTS: [usize; 3] = [1, 2, 4];

/// Frameworks compared by the serving sweep.
pub const SERVE_FRAMEWORKS: [Framework; 2] = [Framework::KTransformers, Framework::HybriMoe];

/// Runs a decode stage for `framework` and returns its metrics.
///
/// # Example
///
/// ```
/// use hybrimoe::Framework;
/// use hybrimoe_model::ModelConfig;
///
/// let m = hybrimoe_bench::run_decode(
///     Framework::HybriMoe, &ModelConfig::tiny_test(), 0.5, 4, 1);
/// assert_eq!(m.steps.len(), 4);
/// ```
pub fn run_decode(
    framework: Framework,
    model: &ModelConfig,
    cache_ratio: f64,
    steps: usize,
    seed: u64,
) -> StageMetrics {
    let trace = TraceGenerator::new(model.clone(), seed).decode_trace(steps);
    let mut engine =
        Engine::new(EngineConfig::preset(framework, model.clone(), cache_ratio).with_seed(seed));
    engine.run(&trace)
}

/// Runs a prefill stage of `tokens` prompt tokens and returns its metrics.
pub fn run_prefill(
    framework: Framework,
    model: &ModelConfig,
    cache_ratio: f64,
    tokens: u32,
    seed: u64,
) -> StageMetrics {
    let trace = TraceGenerator::new(model.clone(), seed).prefill_trace(tokens);
    let mut engine =
        Engine::new(EngineConfig::preset(framework, model.clone(), cache_ratio).with_seed(seed));
    engine.run(&trace)
}

/// Parameters of one serving experiment shared across the sweep axes.
#[derive(Debug, Clone, Copy)]
pub struct ServeLoad {
    /// Requests to serve.
    pub requests: usize,
    /// Prompt tokens per request.
    pub prompt_tokens: u32,
    /// Output tokens per request.
    pub decode_tokens: u32,
    /// Continuous-batch bound.
    pub max_batch: usize,
    /// Whether arrivals are Poisson (else deterministic spacing).
    pub poisson: bool,
}

impl Default for ServeLoad {
    fn default() -> Self {
        ServeLoad {
            requests: 24,
            prompt_tokens: 64,
            decode_tokens: 16,
            max_batch: 8,
            poisson: true,
        }
    }
}

/// Runs one continuous-batching serving experiment.
///
/// # Example
///
/// ```
/// use hybrimoe::Framework;
/// use hybrimoe_bench::{run_serve, ServeLoad};
/// use hybrimoe_model::ModelConfig;
///
/// let load = ServeLoad {
///     requests: 3,
///     prompt_tokens: 8,
///     decode_tokens: 2,
///     max_batch: 2,
///     poisson: false,
/// };
/// let report = run_serve(Framework::HybriMoe, &ModelConfig::tiny_test(), 0.5, 50.0, load, 1);
/// assert_eq!(report.requests.len(), 3);
/// ```
pub fn run_serve(
    framework: Framework,
    model: &ModelConfig,
    cache_ratio: f64,
    arrival_rate_per_sec: f64,
    load: ServeLoad,
    seed: u64,
) -> ServeReport {
    run_serve_gpus(
        framework,
        model,
        cache_ratio,
        arrival_rate_per_sec,
        load,
        seed,
        1,
    )
}

/// Runs one continuous-batching serving experiment on a platform with
/// `num_gpus` GPU shards.
#[allow(clippy::too_many_arguments)]
pub fn run_serve_gpus(
    framework: Framework,
    model: &ModelConfig,
    cache_ratio: f64,
    arrival_rate_per_sec: f64,
    load: ServeLoad,
    seed: u64,
    num_gpus: usize,
) -> ServeReport {
    ServeSim::new(ServeConfig {
        engine: EngineConfig::preset(framework, model.clone(), cache_ratio)
            .with_seed(seed)
            .with_num_gpus(num_gpus),
        arrivals: ArrivalProcess::per_second(arrival_rate_per_sec, load.poisson),
        requests: load.requests,
        prompt_tokens: load.prompt_tokens,
        decode_tokens: load.decode_tokens,
        max_batch: load.max_batch,
        seed,
    })
    .run()
}

/// One row of the serving sweep: a framework label plus the experiment's
/// aggregate summary (which carries rate, ratio and GPU count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeRow {
    /// Framework label (`Framework::to_string`).
    pub framework: String,
    /// Aggregate metrics of the experiment.
    pub summary: ServeSummary,
}

/// Runs the full serving sweep (arrival rate × cache ratio × GPU count ×
/// framework) that `serve_bench` reports and `bench_check` gates. The
/// sweep is deterministic: same model, load and seed give bit-identical
/// rows.
pub fn serve_sweep(model: &ModelConfig, load: ServeLoad, seed: u64) -> Vec<ServeRow> {
    let mut rows = Vec::new();
    for rate in SERVE_ARRIVAL_RATES {
        for ratio in SERVE_CACHE_RATIOS {
            for num_gpus in SERVE_GPU_COUNTS {
                for framework in SERVE_FRAMEWORKS {
                    let report =
                        run_serve_gpus(framework, model, ratio, rate, load, seed, num_gpus);
                    rows.push(ServeRow {
                        framework: framework.to_string(),
                        summary: report.summary(),
                    });
                }
            }
        }
    }
    rows
}

/// Arrival rate of the prefetch sweep, requests per second.
pub const PREFETCH_RATE: f64 = 5.0;

/// Cache ratio of the prefetch sweep — the paper's tight memory point,
/// which is also what the `bench_check` prefetch gate watches.
pub const PREFETCH_RATIO: f64 = 0.25;

/// Lookahead depths swept for the predictive prefetcher (the default
/// depth is covered by the ablation rows).
pub const PREFETCH_LOOKAHEADS: [usize; 3] = [1, 2, 4];

/// Chunked-prefill sizes swept on the full pipeline (0 = chunking off).
pub const PREFETCH_CHUNK_SIZES: [u32; 3] = [0, 32, 64];

/// Prompt length of the chunked-prefill rows: long enough that every
/// swept chunk size actually splits the prefill.
pub const PREFETCH_CHUNK_PROMPT: u32 = 128;

/// One row of the predictive-prefetch sweep: a prefetcher/lookahead/chunk
/// configuration of the HybriMoE preset plus what it measured. Written to
/// `BENCH_prefetch.json` and gated by `bench_check`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchRow {
    /// Prefetcher label ([`PrefetcherKind::name`]).
    pub prefetcher: String,
    /// Prefetch lookahead depth, in layers.
    pub lookahead: usize,
    /// Whether step-boundary pipelined prefetch was on.
    pub pipelined: bool,
    /// Chunked-prefill size in tokens (0 = chunking off).
    pub chunked_prefill: u32,
    /// Prompt tokens per request in this row's load.
    pub prompt_tokens: u32,
    /// Expert-cache ratio.
    pub cache_ratio: f64,
    /// Offered arrival rate, requests per second.
    pub arrival_rate_per_sec: f64,
    /// Expert-cache hit ratio over the whole run (post-warmup).
    pub cache_hit_ratio: f64,
    /// Aggregate decode throughput.
    pub output_tokens_per_sec: f64,
    /// Wall time of the whole run on the modeled clock, ms.
    pub makespan_ms: f64,
    /// 99th-percentile time per output token, ms — the decode-latency
    /// signal the chunked-prefill rows must keep flat.
    pub tpot_p99_ms: f64,
    /// Background transfers issued by the prefetcher.
    pub prefetch_issued: u64,
    /// Prefetched experts that entered the cache.
    pub prefetch_landed: u64,
    /// Prefetched experts that arrived useless.
    pub prefetch_wasted: u64,
    /// Rolling top-k accuracy of the learned predictor (`None` for the
    /// unlearned prefetchers).
    pub predictor_accuracy: Option<f64>,
}

/// Runs one prefetch-sweep point: a HybriMoE-preset serve experiment with
/// the given prefetcher configuration, returning the measured row.
fn prefetch_point(
    model: &ModelConfig,
    load: ServeLoad,
    seed: u64,
    kind: PrefetcherKind,
    lookahead: usize,
    pipelined: bool,
    chunk: u32,
) -> PrefetchRow {
    let mut engine = EngineConfig::preset(Framework::HybriMoe, model.clone(), PREFETCH_RATIO)
        .with_seed(seed)
        .with_prefetcher(kind)
        .with_prefetch_lookahead(lookahead)
        .with_pipelined_prefetch(pipelined);
    if chunk > 0 {
        engine = engine.with_chunked_prefill(chunk);
    }
    let (report, stats) = ServeSim::new(ServeConfig {
        engine,
        arrivals: ArrivalProcess::per_second(PREFETCH_RATE, load.poisson),
        requests: load.requests,
        prompt_tokens: load.prompt_tokens,
        decode_tokens: load.decode_tokens,
        max_batch: load.max_batch,
        seed,
    })
    .run_instrumented();
    let summary = report.summary();
    PrefetchRow {
        prefetcher: kind.name().to_owned(),
        lookahead,
        pipelined,
        chunked_prefill: chunk,
        prompt_tokens: load.prompt_tokens,
        cache_ratio: PREFETCH_RATIO,
        arrival_rate_per_sec: PREFETCH_RATE,
        cache_hit_ratio: stats.cache_hit_ratio,
        output_tokens_per_sec: summary.output_tokens_per_sec,
        makespan_ms: summary.makespan_ms,
        tpot_p99_ms: summary.tpot_p99_ms,
        prefetch_issued: stats.prefetch.issued,
        prefetch_landed: stats.prefetch.landed,
        prefetch_wasted: stats.prefetch.wasted,
        predictor_accuracy: stats.predictor_accuracy,
    }
}

/// Runs the predictive-prefetch sweep that `prefetch_bench` reports and
/// `bench_check` gates: a prefetcher ablation (none / next-layer-topk /
/// impact-driven / predictive / predictive+pipelined) at the default
/// lookahead, a lookahead-depth axis on the in-step predictive path, and
/// a chunked-prefill axis on a prompt long enough to split.
/// Deterministic: same model, load and seed give bit-identical rows.
pub fn prefetch_sweep(model: &ModelConfig, load: ServeLoad, seed: u64) -> Vec<PrefetchRow> {
    let mut rows = Vec::new();
    // Prefetcher ablation at the default lookahead, unpipelined.
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::NextLayerTopK,
        PrefetcherKind::ImpactDriven,
        PrefetcherKind::Predictive,
    ] {
        rows.push(prefetch_point(
            model,
            load,
            seed,
            kind,
            DEFAULT_PREFETCH_LOOKAHEAD,
            false,
            0,
        ));
    }
    // The full pipeline: predictive prediction + boundary-issued overlap.
    let full = PrefetcherKind::Predictive;
    rows.push(prefetch_point(
        model,
        load,
        seed,
        full,
        DEFAULT_PREFETCH_LOOKAHEAD,
        true,
        0,
    ));
    // Lookahead depth on the in-step predictive path (unpipelined, where
    // depth governs how far the learned lookahead extends; the pipelined
    // boundary path lands on free slots only, so at a warm full cache its
    // plans don't vary with depth).
    for depth in PREFETCH_LOOKAHEADS {
        rows.push(prefetch_point(model, load, seed, full, depth, false, 0));
    }
    // Chunked prefill on the full pipeline, long prompt.
    let mut chunk_load = load;
    chunk_load.prompt_tokens = PREFETCH_CHUNK_PROMPT;
    for chunk in PREFETCH_CHUNK_SIZES {
        rows.push(prefetch_point(
            model,
            chunk_load,
            seed,
            full,
            DEFAULT_PREFETCH_LOOKAHEAD,
            true,
            chunk,
        ));
    }
    rows
}

/// The identity of a prefetch-sweep row within the sweep (what the gate
/// keys points by).
pub fn prefetch_point_key(r: &PrefetchRow) -> (String, usize, bool, u32, u32) {
    (
        r.prefetcher.clone(),
        r.lookahead,
        r.pipelined,
        r.chunked_prefill,
        r.prompt_tokens,
    )
}

/// Batch sizes of the real-backend kernel sweep (`real_bench`).
pub const REAL_BATCH_SIZES: [usize; 5] = [1, 4, 8, 16, 32];

/// Routing widths of the real-backend sweep: every token routes among the
/// first `E` experts, so `E` bounds the activated expert count per layer.
pub const REAL_EXPERT_COUNTS: [u16; 2] = [4, 8];

/// Worker-thread caps of the real-backend sweep (the executor clamps to
/// the machine's available parallelism).
pub const REAL_THREAD_COUNTS: [usize; 2] = [1, 2];

/// One row of the real-backend sweep: measured decode throughput of the
/// expert-major batched executor (on one kernel backend) vs the retained
/// token-major scalar reference at one (batch, expert count, thread cap)
/// point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RealRow {
    /// Kernel backend of the expert-major executor (`scalar`, `portable`,
    /// `avx2` — the names of
    /// [`KernelBackendKind::name`](hybrimoe_kernels::KernelBackendKind)).
    pub backend: String,
    /// Tokens per layer execution.
    pub batch: usize,
    /// Routing width (experts the tokens route among).
    pub experts: u16,
    /// Worker-thread cap of both executors.
    pub threads: usize,
    /// Expert-major batched path, tokens per second.
    pub expert_major_tok_s: f64,
    /// Token-major scalar reference path, tokens per second.
    pub token_major_tok_s: f64,
    /// `expert_major_tok_s / token_major_tok_s`.
    pub speedup: f64,
}

/// The model `real_bench` executes: one MoE layer sized so a single expert
/// forward is kernel-bound (hidden 128, inter 256) yet the whole sweep
/// stays in a few hundred megabytes of synthetic weights.
pub fn real_bench_model() -> ModelConfig {
    ModelConfig {
        name: "real-bench".to_owned(),
        layers: 1,
        shared_experts: 0,
        routed_experts: 8,
        activated_experts: 2,
        shared_shape: None,
        routed_shape: ExpertShape::new(128, 256),
    }
}

/// Deterministic inputs, routes and a hybrid schedule for one real-bench
/// layer: `batch` tokens routing among the first `experts` experts.
fn real_layer(
    model: &ModelConfig,
    batch: usize,
    experts: u16,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<RouterOutput>, SchedulePlan) {
    let hidden = model.routed_shape.hidden() as usize;
    let total = model.routed_experts as usize;
    let k = model.activated_experts as usize;
    let (inputs, routes): (Vec<Vec<f32>>, Vec<RouterOutput>) = (0..batch)
        .map(|t| {
            let x: Vec<f32> = (0..hidden)
                .map(|i| (((t as u64 * 131 + i as u64 * 7 + seed) % 100) as f32 / 50.0 - 1.0) * 0.1)
                .collect();
            let logits: Vec<f32> = (0..total)
                .map(|e| {
                    if e < experts as usize {
                        (((t + e * 13 + seed as usize) % 17) as f32) / 4.0
                    } else {
                        -1e9
                    }
                })
                .collect();
            (x, RouterOutput::route(&logits, k))
        })
        .unzip();
    let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &routes);
    let tasks: Vec<ExpertTask> = routing
        .activated()
        .into_iter()
        .map(|(e, load)| ExpertTask {
            expert: e,
            load,
            cached: e.0 % 2 == 0,
        })
        .collect();
    let cost = UnitCostModel::paper_fig5();
    let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
    let plan = HybridScheduler::new().schedule(&ctx);
    (inputs, routes, plan)
}

/// Measured decode throughput (tokens/s) of one executor: best of three
/// trials of `reps` repetitions each, after one untimed warmup execution
/// (weight materialization, scratch growth, pool spawn). Best-of-N is the
/// standard defence against transient scheduler interference: the fastest
/// trial is the one least perturbed by the host.
fn real_throughput(
    exec: &mut RealLayerExecutor,
    plan: &SchedulePlan,
    inputs: &[Vec<f32>],
    routes: &[RouterOutput],
    reps: usize,
) -> f64 {
    exec.execute_layer(LayerId(0), plan, inputs, routes)
        .expect("warmup executes");
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            let out = exec
                .execute_layer(LayerId(0), plan, inputs, routes)
                .expect("bench executes");
            std::hint::black_box(&out.output);
        }
        let rate = (reps * inputs.len()) as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Median speedup across the rows (empty slice → 0). The real-backend CI
/// gate compares medians: individual wall-clock points wobble by tens of
/// percent on shared hosts, but the median of all batched within-run
/// ratios is stable.
pub fn median_speedup(rows: &[RealRow]) -> f64 {
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    median_f64(&speedups)
}

/// Runs the real-execution sweep (kernel backend × batch size × expert
/// count × thread cap) that `real_bench` reports and `bench_check` gates:
/// each point measures the token-major scalar reference once, then the
/// expert-major batched executor on every backend this host can run
/// ([`hybrimoe_kernels::backend::available`]) against identical inputs and
/// plans. Inputs are seed-deterministic; the measured rates are wall-clock
/// and therefore machine-dependent, which is why the CI gate compares the
/// within-run per-backend *speedup* rather than absolute rates.
pub fn real_sweep(seed: u64) -> Vec<RealRow> {
    let model = real_bench_model();
    let mut rows = Vec::new();
    for experts in REAL_EXPERT_COUNTS {
        for batch in REAL_BATCH_SIZES {
            let (inputs, routes, plan) = real_layer(&model, batch, experts, seed);
            // Constant total work per point: more reps for small batches.
            let reps = (128 / batch).clamp(2, 32);
            for threads in REAL_THREAD_COUNTS {
                let mut reference = RealLayerExecutor::with_options(
                    model.clone(),
                    seed,
                    RealExecOptions {
                        max_threads: threads,
                        token_major: true,
                        ..Default::default()
                    },
                );
                let token_major_tok_s =
                    real_throughput(&mut reference, &plan, &inputs, &routes, reps);
                for backend in hybrimoe_kernels::backend::available() {
                    let mut batched = RealLayerExecutor::with_options(
                        model.clone(),
                        seed,
                        RealExecOptions {
                            max_threads: threads,
                            kernel_backend: backend.kind(),
                            ..Default::default()
                        },
                    );
                    let expert_major_tok_s =
                        real_throughput(&mut batched, &plan, &inputs, &routes, reps);
                    rows.push(RealRow {
                        backend: backend.kind().name().to_owned(),
                        batch,
                        experts,
                        threads,
                        expert_major_tok_s,
                        token_major_tok_s,
                        speedup: expert_major_tok_s / token_major_tok_s,
                    });
                }
            }
        }
    }
    rows
}

/// Worker counts of the distributed-worker sweep (`worker_bench`).
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Batch sizes of the distributed-worker sweep; the CI gate watches the
/// points at [`WORKER_GATE_BATCH`] and above.
pub const WORKER_BATCH_SIZES: [usize; 3] = [1, 8, 32];

/// Minimum batch size of worker gate points: frame and dispatch overhead
/// amortizes over a batch, single-token layers stay ungated.
pub const WORKER_GATE_BATCH: usize = 8;

/// One row of the distributed-worker sweep: measured decode throughput of
/// the remote executor at one (worker count, pipelining, batch) point,
/// against the same executor running fully local (no endpoints) on
/// identical inputs and plans. Written to `BENCH_worker.json` and gated by
/// `bench_check --worker-fresh`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerRow {
    /// Expert workers serving shards over the framed wire protocol.
    pub workers: usize,
    /// Whether the client dispatched every expert batch before collecting
    /// any reply (strict-FIFO pipelining).
    pub pipelined: bool,
    /// Tokens per layer execution.
    pub batch: usize,
    /// Routing width (experts the tokens route among).
    pub experts: u16,
    /// Remote path: expert batches over the wire, tokens per second.
    pub remote_tok_s: f64,
    /// Fully-local path of the same executor, tokens per second.
    pub local_tok_s: f64,
    /// `remote_tok_s / local_tok_s`.
    pub speedup: f64,
}

/// The identity of a worker-sweep row within the sweep (what the gate
/// keys points by).
pub fn worker_point_key(r: &WorkerRow) -> (usize, bool, usize, u16) {
    (r.workers, r.pipelined, r.batch, r.experts)
}

/// Median of a finite sample (empty slice → 0); even lengths average the
/// two middle values.
pub fn median_f64(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Measured decode throughput (tokens/s) of the remote executor: best of
/// three trials after one untimed warmup (which also opens the worker
/// connections and loads shards). Panics if any batch failed over — a
/// measurement that silently fell back to local kernels would report the
/// wrong path.
fn worker_throughput(
    exec: &mut RemoteLayerExecutor,
    plan: &SchedulePlan,
    inputs: &[Vec<f32>],
    routes: &[RouterOutput],
    reps: usize,
) -> f64 {
    exec.execute_layer(LayerId(0), plan, inputs, routes)
        .expect("warmup executes");
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            let out = exec
                .execute_layer(LayerId(0), plan, inputs, routes)
                .expect("bench executes");
            std::hint::black_box(&out.output);
        }
        let rate = (reps * inputs.len()) as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    let health = exec.health();
    assert_eq!(
        health.failovers, 0,
        "worker bench measured a failover; the row would mix remote and local paths"
    );
    best
}

/// Runs the distributed-worker sweep (worker count × pipelining × batch)
/// that `worker_bench` reports and `bench_check` gates. Workers run
/// in-thread behind real loopback TCP sockets speaking the full framed
/// protocol — the same codec and client path as out-of-process workers,
/// minus the process spawn. Scalar kernels and single compute threads are
/// pinned on both sides, so the rows measure wire and dispatch structure
/// rather than SIMD or thread-count differences across hosts. On a
/// multi-core host the pipelined multi-worker rows show real scaling
/// (workers compute concurrently); on any host they must hold parity with
/// a single worker, which is what the CI gate checks.
pub fn worker_sweep(seed: u64) -> Vec<WorkerRow> {
    let model = real_bench_model();
    let experts = model.routed_experts;
    let exec_options = RealExecOptions {
        max_threads: 1,
        kernel_backend: KernelBackendKind::Scalar,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for batch in WORKER_BATCH_SIZES {
        let (inputs, routes, plan) = real_layer(&model, batch, experts, seed);
        let reps = (128 / batch).clamp(2, 32);
        let mut local = RemoteLayerExecutor::new(
            model.clone(),
            seed,
            exec_options,
            &RemoteWorkerOptions::default(),
        );
        let local_tok_s = worker_throughput(&mut local, &plan, &inputs, &routes, reps);
        for workers in WORKER_COUNTS {
            let mut handles = Vec::new();
            let mut endpoints = Vec::new();
            for _ in 0..workers {
                let handle = WorkerServer::bind(
                    &Endpoint::parse("127.0.0.1:0"),
                    WorkerServerOptions {
                        threads: 1,
                        drain_stops_server: false,
                        ..Default::default()
                    },
                )
                .expect("bind bench worker")
                .spawn();
                endpoints.push(handle.endpoint().to_string());
                handles.push(handle);
            }
            for pipelined in [true, false] {
                let mut remote = RemoteLayerExecutor::new(
                    model.clone(),
                    seed,
                    exec_options,
                    &RemoteWorkerOptions {
                        endpoints: endpoints.clone(),
                        pipeline: pipelined,
                        ..Default::default()
                    },
                );
                let remote_tok_s = worker_throughput(&mut remote, &plan, &inputs, &routes, reps);
                assert!(remote.health().requests > 0, "no batch ran remotely");
                rows.push(WorkerRow {
                    workers,
                    pipelined,
                    batch,
                    experts,
                    remote_tok_s,
                    local_tok_s,
                    speedup: remote_tok_s / local_tok_s,
                });
            }
            for handle in handles {
                handle.shutdown();
            }
        }
    }
    rows
}

/// Runs a decode stage for an explicit configuration (ablations).
pub fn run_decode_config(config: EngineConfig, steps: usize, seed: u64) -> StageMetrics {
    let trace = TraceGenerator::new(config.model.clone(), seed).decode_trace(steps);
    Engine::new(config).run(&trace)
}

/// Runs a prefill stage for an explicit configuration (ablations).
pub fn run_prefill_config(config: EngineConfig, tokens: u32, seed: u64) -> StageMetrics {
    let trace = TraceGenerator::new(config.model.clone(), seed).prefill_trace(tokens);
    Engine::new(config).run(&trace)
}

/// Whether two arrival rates denote the same sweep point.
///
/// Gate keys must not do exact float comparison: a snapshot written by an
/// older build may carry a rate recomputed from the *quantized*
/// inter-arrival gap (e.g. 3.0 round-tripping to 3.000000003 through a
/// 333333333ns gap), which would silently unmatch every gate point. A
/// relative tolerance of 1e-6 absorbs that quantization error while still
/// separating any two distinct swept rates.
pub fn same_rate(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-12)
}

/// Nearest-rank percentile of an unsorted sample of milliseconds; zero for
/// an empty sample. (The core crate's percentile works on `SimDuration`
/// series; the load generator measures client-side floats.)
pub fn percentile_f64(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let rank = (p / 100.0 * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// What one `load_gen` run against the serving front-end measured:
/// client-side SLO percentiles over completed streams. Written to
/// `BENCH_server.json` and gated by `bench_check --server-fresh`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerBenchSummary {
    /// Model served.
    pub model: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Requests attempted.
    pub requests: u64,
    /// Requests that streamed to completion.
    pub completed: u64,
    /// Requests rejected with 503 (queue full, shed, or draining).
    pub rejected: u64,
    /// Requests that failed for any other reason (I/O, malformed stream).
    pub failed: u64,
    /// Prompt tokens per request.
    pub prompt_tokens: u32,
    /// Decode tokens per request.
    pub decode_tokens: u32,
    /// Wall-clock of the whole run, ms.
    pub elapsed_ms: f64,
    /// Output tokens streamed to clients.
    pub output_tokens: u64,
    /// Aggregate client-observed token throughput.
    pub output_tokens_per_sec: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Median client-observed time to first token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile client-observed time to first token, ms.
    pub ttft_p99_ms: f64,
    /// Median client-observed end-to-end latency, ms.
    pub latency_p50_ms: f64,
    /// 99th-percentile client-observed end-to-end latency, ms.
    pub latency_p99_ms: f64,
    /// Median server-reported queue wait, ms.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile server-reported queue wait, ms.
    pub queue_wait_p99_ms: f64,
}

/// Formats a duration in seconds with three decimals, e.g. `"1.234s"`.
pub fn secs(d: hybrimoe_hw::SimDuration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats a duration in milliseconds with one decimal, e.g. `"12.3ms"`.
pub fn millis(d: hybrimoe_hw::SimDuration) -> String {
    format!("{:.1}ms", d.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_and_prefill_run_on_tiny_model() {
        let model = ModelConfig::tiny_test();
        let d = run_decode(Framework::KTransformers, &model, 0.5, 3, 2);
        assert_eq!(d.steps.len(), 3);
        let p = run_prefill(Framework::HybriMoe, &model, 0.5, 16, 2);
        assert_eq!(p.steps.len(), 1);
        assert!(p.total.as_nanos() > 0);
    }

    #[test]
    fn same_rate_absorbs_interarrival_quantization() {
        // A rate of 3.0 requests/s quantizes to a 333_333_333ns gap; a
        // baseline written by a build that recomputed the rate from the
        // gap carries 3.000000003. The two must still key to the same
        // gate point, or every non-divisible rate silently un-gates.
        let recomputed = 1e9 / 333_333_333.0;
        assert_ne!(recomputed, 3.0, "rate must not round-trip exactly");
        assert!(same_rate(3.0, recomputed));
        assert!(same_rate(recomputed, 3.0));
        assert!(same_rate(0.0, 0.0));
        // Distinct swept rates never collide.
        for (i, a) in SERVE_ARRIVAL_RATES.iter().enumerate() {
            for (j, b) in SERVE_ARRIVAL_RATES.iter().enumerate() {
                assert_eq!(same_rate(*a, *b), i == j);
            }
        }
    }

    #[test]
    fn percentile_f64_nearest_rank() {
        let mut v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile_f64(&mut v, 50.0), 5.0);
        assert_eq!(percentile_f64(&mut v, 99.0), 10.0);
        assert_eq!(percentile_f64(&mut [], 50.0), 0.0);
        let mut unsorted = vec![9.0, 1.0, 5.0];
        assert_eq!(percentile_f64(&mut unsorted, 0.0), 1.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(hybrimoe_hw::SimDuration::from_millis(1500)), "1.500s");
        assert_eq!(
            millis(hybrimoe_hw::SimDuration::from_micros(12_340)),
            "12.3ms"
        );
    }
}
