//! The network-serving load driver shared by the `load_gen` binary and
//! `bench_check`'s server gate.
//!
//! Opens [`ServerLoad::concurrency`] client connections against a serving
//! front-end (an in-process one by default), streams every request to
//! completion, and reports client-observed SLO percentiles as a
//! [`ServerBenchSummary`](crate::ServerBenchSummary).

use std::fmt::Display;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use hybrimoe::serve::server::{read_one_chunk, read_response_head_full, Server, ServerConfig};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_model::ModelConfig;
use serde::Value;

use crate::ServerBenchSummary;

/// The load `run_server_bench` offers.
#[derive(Debug, Clone, Copy)]
pub struct ServerLoad {
    /// Requests to stream.
    pub requests: usize,
    /// Concurrent client connections (worker threads).
    pub concurrency: usize,
    /// Prompt tokens per request.
    pub prompt_tokens: u32,
    /// Decode tokens per request.
    pub decode_tokens: u32,
    /// Continuous-batch bound of the in-process server (ignored with an
    /// external `addr`).
    pub max_batch: usize,
    /// Admission queue depth of the in-process server.
    pub queue_depth: usize,
    /// Pacing floor of the in-process server's engine steps. A floor that
    /// dominates per-step compute makes the measured TTFT distribution a
    /// property of the *queueing structure* rather than of host speed, so
    /// the CI gate on p99 TTFT holds across machines.
    pub min_step_us: u64,
}

impl Default for ServerLoad {
    fn default() -> Self {
        ServerLoad {
            requests: 1000,
            concurrency: 1000,
            prompt_tokens: 16,
            decode_tokens: 8,
            max_batch: 16,
            queue_depth: 1024,
            min_step_us: 5000,
        }
    }
}

/// Stack size of client worker threads: each just owns one socket and a
/// small read buffer.
const WORKER_STACK: usize = 256 * 1024;

/// Ramp spacing between request starts, so a thousand simultaneous SYNs
/// don't overflow the listener backlog into kernel retransmit delays
/// (which would measure the TCP stack, not the server).
const RAMP_PER_REQUEST: Duration = Duration::from_micros(100);

/// Attempts per request for *pre-admission* transport failures. A burst
/// of a thousand connections can overflow the listener's accept queue;
/// Linux then completes the handshake but resets the first data packet,
/// so the client sees ECONNRESET on a write the server never read. That
/// is load-generator noise, not a served request, and gets retried.
const TRANSPORT_ATTEMPTS: usize = 4;

/// Backoff between transport retries, doubled per attempt — long enough
/// for the acceptor to drain a burst, short next to any TTFT of interest.
const RETRY_BACKOFF: Duration = Duration::from_millis(20);

/// Total admission attempts when a 503 carries `Retry-After`: the server
/// marked the rejection retryable, so the client honors the wait once
/// before counting the request as rejected.
const ADMISSION_ATTEMPTS: usize = 2;

/// Safety cap on an honored `Retry-After` wait, so a misbehaving server
/// cannot stall the load generator indefinitely.
const MAX_RETRY_AFTER: Duration = Duration::from_secs(2);

/// One completed stream, timed by the client's clock.
struct Sample {
    ttft_ms: f64,
    latency_ms: f64,
    queue_wait_ms: f64,
    tokens: u64,
}

#[derive(Default)]
struct Tally {
    samples: Vec<Sample>,
    rejected: u64,
    failed: u64,
}

enum RequestError {
    /// The server said 503 (admission control did its job), carrying the
    /// `Retry-After` seconds when the rejection was retryable (shed or
    /// queue-full — not draining).
    Rejected(Option<u64>),
    /// Transport failed before the server read the request (connect or
    /// request write). Nothing was admitted, so the request is safe to
    /// retry on a fresh connection.
    Transport,
    /// The server took the request but the stream went wrong: bad
    /// status, truncated chunks, missing terminal accounting.
    Failed,
}

/// Forwards a failure detail to stderr when `LOAD_GEN_DEBUG` is set.
fn debug_log(what: &str, detail: impl Display) {
    if std::env::var_os("LOAD_GEN_DEBUG").is_some() {
        eprintln!("debug: {what}: {detail}");
    }
}

/// Runs the load against the server at `addr`, or against a fresh
/// in-process tiny-model server when `addr` is `None`. Blocks until every
/// request resolves; the in-process server is gracefully shut down before
/// returning.
///
/// # Panics
///
/// Panics if the in-process server cannot bind a loopback port.
pub fn run_server_bench(addr: Option<SocketAddr>, load: ServerLoad) -> ServerBenchSummary {
    let server = match addr {
        Some(_) => None,
        None => {
            let mut config = ServerConfig::new(EngineConfig::preset(
                Framework::HybriMoe,
                ModelConfig::tiny_test(),
                0.5,
            ));
            config.max_batch = load.max_batch;
            config.queue_depth = load.queue_depth;
            config.min_step =
                (load.min_step_us > 0).then(|| Duration::from_micros(load.min_step_us));
            Some(Server::start(config).expect("in-process server binds a loopback port"))
        }
    };
    let addr = addr.unwrap_or_else(|| server.as_ref().expect("started above").addr());

    let tally = Mutex::new(Tally::default());
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    thread::scope(|scope| {
        for _ in 0..load.concurrency.max(1) {
            let builder = thread::Builder::new().stack_size(WORKER_STACK);
            let tally = &tally;
            let next = &next;
            let spawned = builder.spawn_scoped(scope, move || loop {
                let ticket = next.fetch_add(1, Ordering::Relaxed);
                if ticket >= load.requests {
                    break;
                }
                // Stagger connection starts across the ramp window.
                let due = RAMP_PER_REQUEST * ticket as u32;
                let elapsed = started.elapsed();
                if due > elapsed {
                    thread::sleep(due - elapsed);
                }
                let outcome = request_with_retry(addr, load.prompt_tokens, load.decode_tokens);
                let mut tally = tally.lock().expect("tally lock poisoned");
                match outcome {
                    Ok(sample) => tally.samples.push(sample),
                    Err(RequestError::Rejected(_)) => tally.rejected += 1,
                    Err(_) => tally.failed += 1,
                }
            });
            spawned.expect("spawn load worker");
        }
    });
    let elapsed = started.elapsed();
    let model = match server {
        Some(handle) => {
            let metrics = handle.shutdown();
            debug_assert_eq!(metrics.queued, 0, "graceful drain left requests queued");
            "tiny-test".to_owned()
        }
        None => "external".to_owned(),
    };

    let mut tally = tally.into_inner().expect("tally lock poisoned");
    summarize(&mut tally, &model, load, elapsed)
}

fn summarize(
    tally: &mut Tally,
    model: &str,
    load: ServerLoad,
    elapsed: Duration,
) -> ServerBenchSummary {
    let completed = tally.samples.len() as u64;
    let output_tokens: u64 = tally.samples.iter().map(|s| s.tokens).sum();
    let secs = elapsed.as_secs_f64();
    let mut ttft: Vec<f64> = tally.samples.iter().map(|s| s.ttft_ms).collect();
    let mut latency: Vec<f64> = tally.samples.iter().map(|s| s.latency_ms).collect();
    let mut queue_wait: Vec<f64> = tally.samples.iter().map(|s| s.queue_wait_ms).collect();
    ServerBenchSummary {
        model: model.to_owned(),
        concurrency: load.concurrency,
        requests: load.requests as u64,
        completed,
        rejected: tally.rejected,
        failed: tally.failed,
        prompt_tokens: load.prompt_tokens,
        decode_tokens: load.decode_tokens,
        elapsed_ms: secs * 1e3,
        output_tokens,
        output_tokens_per_sec: if secs > 0.0 {
            output_tokens as f64 / secs
        } else {
            0.0
        },
        requests_per_sec: if secs > 0.0 {
            completed as f64 / secs
        } else {
            0.0
        },
        ttft_p50_ms: crate::percentile_f64(&mut ttft, 50.0),
        ttft_p99_ms: crate::percentile_f64(&mut ttft, 99.0),
        latency_p50_ms: crate::percentile_f64(&mut latency, 50.0),
        latency_p99_ms: crate::percentile_f64(&mut latency, 99.0),
        queue_wait_p50_ms: crate::percentile_f64(&mut queue_wait, 50.0),
        queue_wait_p99_ms: crate::percentile_f64(&mut queue_wait, 99.0),
    }
}

/// Streams one request, retrying pre-admission transport failures with a
/// doubling backoff and honoring `Retry-After` on retryable 503s (once,
/// waiting the advertised seconds up to [`MAX_RETRY_AFTER`]). A 503
/// without `Retry-After` (draining) and post-admission failures pass
/// through unretried — those count against the server.
fn request_with_retry(addr: SocketAddr, prompt: u32, decode: u32) -> Result<Sample, RequestError> {
    let mut backoff = RETRY_BACKOFF;
    let mut transport_attempts = 0usize;
    let mut admission_attempts = 0usize;
    loop {
        match one_request(addr, prompt, decode) {
            Err(RequestError::Transport) if transport_attempts + 1 < TRANSPORT_ATTEMPTS => {
                transport_attempts += 1;
                thread::sleep(backoff);
                backoff *= 2;
            }
            Err(RequestError::Rejected(Some(secs)))
                if admission_attempts + 1 < ADMISSION_ATTEMPTS =>
            {
                admission_attempts += 1;
                thread::sleep(Duration::from_secs(secs).min(MAX_RETRY_AFTER));
            }
            outcome => return outcome,
        }
    }
}

/// Streams one request, timing TTFT and end-to-end latency client-side.
fn one_request(addr: SocketAddr, prompt: u32, decode: u32) -> Result<Sample, RequestError> {
    let mut stream = connect_with_retry(addr).map_err(|e| {
        debug_log("connect", e);
        RequestError::Transport
    })?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let body = format!("{{\"prompt_tokens\":{prompt},\"decode_tokens\":{decode}}}");
    let start = Instant::now();
    write!(
        stream,
        "POST /v1/generate HTTP/1.1\r\nHost: load_gen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| {
        // An accept-queue overflow resets the connection before the
        // server reads a byte; the request was never admitted.
        debug_log("write", e);
        RequestError::Transport
    })?;
    stream.flush().map_err(|e| {
        debug_log("flush", e);
        RequestError::Transport
    })?;

    let mut reader = BufReader::new(stream);
    let head = read_response_head_full(&mut reader).map_err(|e| {
        debug_log("response head", e);
        RequestError::Failed
    })?;
    if head.status == 503 {
        return Err(RequestError::Rejected(head.retry_after));
    }
    if head.status != 200 || !head.chunked {
        debug_log(
            "response",
            format_args!("status {} chunked {}", head.status, head.chunked),
        );
        return Err(RequestError::Failed);
    }

    let mut ttft_ms = None;
    let mut tokens: u64 = 0;
    let mut last_chunk = None;
    while let Some(chunk) = read_one_chunk(&mut reader).map_err(|e| {
        debug_log("chunk", e);
        RequestError::Failed
    })? {
        if ttft_ms.is_none() {
            ttft_ms = Some(start.elapsed().as_secs_f64() * 1e3);
        }
        if chunk.contains("\"token\"") {
            tokens += 1;
        }
        last_chunk = Some(chunk);
    }
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    let ttft_ms = ttft_ms.ok_or(RequestError::Failed)?;
    // The terminal chunk carries the server-side accounting.
    let done = last_chunk.ok_or_else(|| {
        debug_log("stream", "closed with zero chunks");
        RequestError::Failed
    })?;
    if !done.contains("\"done\"") {
        debug_log("stream", "ended without done chunk");
        return Err(RequestError::Failed);
    }
    let queue_wait_ms = serde_json::from_str::<Value>(&done)
        .ok()
        .and_then(|v| match v {
            Value::Map(map) => map
                .into_iter()
                .find(|(k, _)| k == "queue_wait_ms")
                .and_then(|(_, v)| v.as_f64()),
            _ => None,
        })
        .unwrap_or(0.0);
    Ok(Sample {
        ttft_ms,
        latency_ms,
        queue_wait_ms,
        tokens,
    })
}

/// Connects with a short retry ladder: under a thousand-way connection
/// burst a SYN can get dropped, and one kernel retransmit timeout would
/// otherwise dominate that request's measured TTFT.
fn connect_with_retry(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut delay = Duration::from_millis(2);
    for _ in 0..4 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(_) => {
                thread::sleep(delay);
                delay *= 4;
            }
        }
    }
    TcpStream::connect(addr)
}
