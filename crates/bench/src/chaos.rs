//! The chaos soak shared by the `chaos_bench` binary and `bench_check`'s
//! chaos gate.
//!
//! Two phases, one invariant: **every admitted request terminates, and no
//! batch slot leaks** — under injected engine panics, latency spikes,
//! request deadlines, client cancels, client hangups and slow readers.
//!
//! * **Phase 1 (soak)** drives a [`ContinuousBatcher`] directly on the
//!   modeled clock with a seeded storm of arrivals, deadlines and cancels
//!   while the engine injects step panics and latency spikes from a
//!   [`FaultPlan`]. Everything runs on the simulated clock, so the counts
//!   are bit-reproducible from the seed: running `chaos_bench` twice with
//!   the same seed must produce byte-identical JSON (CI diffs exactly
//!   that).
//! * **Phase 2 (server)** starts a real TCP [`Server`] with the same
//!   engine fault plan and fires concurrent clients at it — some with
//!   tight deadlines, some that hang up mid-stream, some that read
//!   slowly, all honoring `Retry-After` on retryable 503s. Wall-clock
//!   scheduling makes the individual counters nondeterministic, so the
//!   summary reports only the *invariants* as booleans: they hold on
//!   every run or the gate fails.

use std::io::{BufReader, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use hybrimoe::serve::server::{
    read_one_chunk, read_response_head_full, Server, ServerConfig, ServerMetrics,
};
use hybrimoe::serve::{ContinuousBatcher, RequestSpec};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_fault::{FaultPlan, FaultRates, FaultStream};
use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_model::ModelConfig;
use serde::{Deserialize, Serialize, Value};

/// What one chaos run measured. Written to `BENCH_chaos.json` and gated
/// by `bench_check --chaos-fresh`.
///
/// The soak fields are deterministic functions of `seed`; the server
/// fields are invariant booleans (plus the fixed request count), so the
/// whole summary serializes byte-identically across same-seed runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// Seed the whole run derived from.
    pub seed: u64,
    /// Requests enqueued by the soak.
    pub soak_requests: u64,
    /// Soak requests that completed their full token stream.
    pub soak_completed: u64,
    /// Soak requests expired past their deadline.
    pub soak_timed_out: u64,
    /// Soak requests cancelled mid-flight (simulated client hangups).
    pub soak_cancelled: u64,
    /// Soak requests killed by a contained engine panic.
    pub soak_failed: u64,
    /// Engine step panics the soak contained (batcher rebuilt each time).
    pub soak_panics_contained: u64,
    /// Engine steps the soak took across all batcher incarnations.
    pub soak_steps: u64,
    /// Requests still holding a batch slot after the soak drained —
    /// **must be zero**.
    pub soak_leaked_slots: u64,
    /// Requests the server phase attempted.
    pub server_requests: u64,
    /// Every server-phase request reached a definite terminal outcome
    /// (completed / timed out / failed / rejected / hung up) — none
    /// vanished.
    pub server_all_terminated: bool,
    /// The server's final metrics balance: `admitted == completed +
    /// cancelled + timed_out + failed`, with nothing queued or running.
    pub server_accounted: bool,
    /// `/healthz` still answered after the storm, and its `status` agreed
    /// with the metrics (degraded iff restarts or open breakers).
    pub server_healthz_consistent: bool,
}

/// Fixed request count of the soak phase.
const SOAK_REQUESTS: u64 = 300;

/// Batch bound of the soak's batcher.
const SOAK_MAX_BATCH: usize = 4;

/// Fixed request count of the server phase.
const SERVER_REQUESTS: usize = 48;

/// Concurrent client threads of the server phase.
const SERVER_CONCURRENCY: usize = 8;

/// Admission retries a chaos client makes when a 503 carries
/// `Retry-After` (honored in full, like `load_gen`).
const ADMISSION_ATTEMPTS: usize = 3;

/// The engine-side fault plan both phases inject: step panics plus small
/// latency spikes.
fn engine_faults(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: FaultRates {
            // ~1 panic per 250 steps: several contained restarts per
            // phase, never so many that nothing completes.
            panic_ppm: 4_000,
            // Occasional 1ms spikes: exercises the spike path without
            // stretching wall time.
            spike_ppm: 10_000,
            spike_ms: 1,
            ..FaultRates::default()
        },
    }
}

/// Runs both phases and assembles the summary.
pub fn run_chaos_bench(seed: u64) -> ChaosSummary {
    let soak = run_chaos_soak(seed);
    let server = run_chaos_server(seed);
    ChaosSummary {
        seed,
        soak_requests: soak.requests,
        soak_completed: soak.completed,
        soak_timed_out: soak.timed_out,
        soak_cancelled: soak.cancelled,
        soak_failed: soak.failed,
        soak_panics_contained: soak.panics_contained,
        soak_steps: soak.steps,
        soak_leaked_slots: soak.leaked_slots,
        server_requests: SERVER_REQUESTS as u64,
        server_all_terminated: server.all_terminated,
        server_accounted: server.accounted,
        server_healthz_consistent: server.healthz_consistent,
    }
}

/// Phase-1 counters (all deterministic from the seed).
#[derive(Debug, Default)]
pub struct SoakOutcome {
    /// Requests enqueued.
    pub requests: u64,
    /// Requests that streamed to completion.
    pub completed: u64,
    /// Requests expired past their deadline.
    pub timed_out: u64,
    /// Requests cancelled mid-flight.
    pub cancelled: u64,
    /// Requests killed by a contained panic.
    pub failed: u64,
    /// Step panics contained.
    pub panics_contained: u64,
    /// Steps taken.
    pub steps: u64,
    /// Slots still held after the drain (must be zero).
    pub leaked_slots: u64,
}

/// Phase 1: the sim-clock batcher soak. A seeded storm of arrivals (with
/// deadlines tight enough that some must expire), random mid-flight
/// cancels, and an engine that panics and spikes per its fault plan. The
/// driver contains each panic exactly like the server's engine loop:
/// `catch_unwind`, fail everything in flight, rebuild the batcher.
pub fn run_chaos_soak(seed: u64) -> SoakOutcome {
    let model = ModelConfig::tiny_test();
    let engine = EngineConfig::preset(Framework::HybriMoe, model, 0.5)
        .with_seed(seed)
        .with_fault_plan(engine_faults(seed));
    let make_batcher = || ContinuousBatcher::new(engine.clone(), SOAK_MAX_BATCH, seed);
    let mut batcher = make_batcher();
    // The driver's own randomness is a separate site so the storm shape
    // never correlates with the engine's fault rolls.
    let mut rng = FaultStream::new(seed ^ 0x0C4A_05BE_EC01);

    let mut out = SoakOutcome::default();
    let mut live: Vec<u32> = Vec::new();
    let mut next_id: u32 = 0;
    let mut now = SimTime::ZERO;

    while out.requests < SOAK_REQUESTS || !batcher.is_idle() {
        // A bursty trickle of arrivals; about a third carry deadlines
        // short enough that queueing or a spike blows them.
        while out.requests < SOAK_REQUESTS && rng.below(100) < 40 {
            let deadline = match rng.below(3) {
                0 => Some(now + SimDuration::from_micros(rng.next_u64() % 20_000)),
                _ => None,
            };
            batcher.enqueue(RequestSpec {
                id: next_id,
                arrival: now,
                prompt_tokens: 1 + (rng.next_u64() % 24) as u32,
                decode_tokens: 1 + (rng.next_u64() % 12) as u32,
                priority: (rng.next_u64() % 2) as u8,
                deadline,
            });
            live.push(next_id);
            next_id = next_id.wrapping_add(1);
            out.requests += 1;
        }
        // Simulated client hangups: cancel a random live request.
        if !live.is_empty() && rng.roll_ppm(60_000) {
            let victim = live[rng.below(live.len() as u64) as usize];
            if batcher.cancel(victim) {
                out.cancelled += 1;
                live.retain(|id| *id != victim);
            }
        }
        if batcher.is_idle() {
            now += SimDuration::from_millis(1);
            continue;
        }
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batcher.step(now, |latency| now + latency)
        }));
        match stepped {
            Ok(outcome) => {
                out.steps += 1;
                out.completed += outcome.completed.len() as u64;
                for m in &outcome.completed {
                    live.retain(|id| *id != m.id);
                }
                for id in outcome
                    .expired_waiting
                    .iter()
                    .chain(&outcome.expired_running)
                {
                    out.timed_out += 1;
                    live.retain(|l| l != id);
                }
                now = outcome.end;
            }
            Err(_) => {
                // Contained exactly like the serving engine loop: every
                // request in flight fails, a fresh batcher takes over.
                out.panics_contained += 1;
                out.failed += live.len() as u64;
                live.clear();
                batcher = make_batcher();
                now += SimDuration::from_millis(1);
            }
        }
    }
    out.leaked_slots = (batcher.waiting_len() + batcher.running_len()) as u64;
    out
}

/// Phase-2 invariant verdicts.
#[derive(Debug)]
pub struct ServerPhaseOutcome {
    /// Every request reached a definite terminal outcome.
    pub all_terminated: bool,
    /// Final server metrics balance with nothing queued or running.
    pub accounted: bool,
    /// `/healthz` answered and agreed with the metrics.
    pub healthz_consistent: bool,
}

/// What one chaos client observed for its request.
enum ClientOutcome {
    /// Stream ended with a terminal `done` chunk.
    Completed,
    /// Stream ended with a terminal `timed_out` chunk.
    TimedOut,
    /// Stream ended with a terminal `failed` chunk (engine restarted).
    FailedChunk,
    /// Admission said 503/504 (after honoring any `Retry-After`).
    Rejected,
    /// The client hung up mid-stream on purpose.
    HungUp,
    /// Anything else: transport error, malformed stream.
    Lost,
}

/// Phase 2: a real TCP server under the same engine fault plan, attacked
/// by concurrent clients that mix tight deadlines, deliberate mid-stream
/// hangups and slow reads. Returns invariant verdicts only — wall-clock
/// scheduling makes raw counts vary run to run.
pub fn run_chaos_server(seed: u64) -> ServerPhaseOutcome {
    let mut config = ServerConfig::new(
        EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
            .with_seed(seed)
            .with_fault_plan(engine_faults(seed)),
    );
    config.max_batch = 4;
    config.queue_depth = 64;
    config.seed = seed;
    let server = Server::start(config).expect("chaos server binds a loopback port");
    let addr = server.addr();

    let lost = AtomicUsize::new(0);
    let outcomes = Mutex::new(Vec::<ClientOutcome>::new());
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        for worker in 0..SERVER_CONCURRENCY {
            let outcomes = &outcomes;
            let lost = &lost;
            let next = &next;
            scope.spawn(move || {
                // Per-worker fault stream: which requests hang up, read
                // slowly, or carry tight deadlines.
                let mut rng = FaultStream::new(seed ^ (0xC11E47 + worker as u64));
                loop {
                    let ticket = next.fetch_add(1, Ordering::Relaxed);
                    if ticket >= SERVER_REQUESTS {
                        break;
                    }
                    let outcome = chaos_request(addr, ticket, &mut rng);
                    if matches!(outcome, ClientOutcome::Lost) {
                        lost.fetch_add(1, Ordering::Relaxed);
                    }
                    outcomes.lock().expect("outcome lock").push(outcome);
                }
            });
        }
    });

    // Read the health endpoints while the server is idle but alive, then
    // shut down and check the final books.
    let metrics = fetch_metrics(addr);
    let healthz_consistent = match (fetch_healthz_status(addr), &metrics) {
        (Some(status), Some(m)) => {
            let degraded = m.engine_restarts > 0 || m.worker_breaker_open > 0;
            status == if degraded { "degraded" } else { "ok" }
        }
        _ => false,
    };
    let terminated = outcomes.into_inner().expect("outcome lock").len();
    let all_terminated = terminated == SERVER_REQUESTS && lost.load(Ordering::Relaxed) == 0;
    let last = server.shutdown();
    let accounted = last.admitted == last.completed + last.cancelled + last.timed_out + last.failed
        && last.queued == 0
        && last.running == 0;
    ServerPhaseOutcome {
        all_terminated,
        accounted,
        healthz_consistent,
    }
}

/// Streams one chaos request: maybe a tight deadline, maybe a deliberate
/// mid-stream hangup, maybe slow reads; honors `Retry-After` on 503.
fn chaos_request(addr: SocketAddr, ticket: usize, rng: &mut FaultStream) -> ClientOutcome {
    // Every 8th request asks for the impossible: a zero deadline, which
    // admission must answer 504 without queueing.
    let deadline_ms = if ticket % 8 == 7 {
        Some(0)
    } else if rng.roll_ppm(300_000) {
        Some(1 + rng.next_u64() % 40) // tight: some of these expire
    } else {
        None
    };
    let hangup = rng.roll_ppm(200_000);
    let slow_read = rng.roll_ppm(200_000);

    for attempt in 1..=ADMISSION_ATTEMPTS {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return ClientOutcome::Lost;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let body = "{\"prompt_tokens\":6,\"decode_tokens\":5}";
        let deadline_header = deadline_ms
            .map(|ms| format!("X-Deadline-Ms: {ms}\r\n"))
            .unwrap_or_default();
        if write!(
            stream,
            "POST /v1/generate HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n{deadline_header}Connection: close\r\n\r\n{body}",
            body.len()
        )
        .is_err()
        {
            return ClientOutcome::Lost;
        }
        let mut reader = BufReader::new(stream);
        let Ok(head) = read_response_head_full(&mut reader) else {
            return ClientOutcome::Lost;
        };
        match head.status {
            200 if head.chunked => {}
            504 => return ClientOutcome::Rejected,
            503 => match head.retry_after {
                Some(secs) if attempt < ADMISSION_ATTEMPTS => {
                    thread::sleep(Duration::from_secs(secs.min(2)));
                    continue;
                }
                _ => return ClientOutcome::Rejected,
            },
            _ => return ClientOutcome::Lost,
        }
        // Stream the chunks; a hangup client drops the socket after the
        // first token and lets the server reclaim the slot.
        let mut saw = None;
        loop {
            match read_one_chunk(&mut reader) {
                Ok(Some(chunk)) => {
                    if hangup {
                        return ClientOutcome::HungUp;
                    }
                    if slow_read {
                        thread::sleep(Duration::from_millis(2));
                    }
                    saw = Some(chunk);
                }
                Ok(None) => break,
                Err(_) => return ClientOutcome::Lost,
            }
        }
        return match saw {
            Some(chunk) if chunk.contains("\"done\"") => ClientOutcome::Completed,
            Some(chunk) if chunk.contains("\"timed_out\"") => ClientOutcome::TimedOut,
            Some(chunk) if chunk.contains("\"failed\"") => ClientOutcome::FailedChunk,
            _ => ClientOutcome::Lost,
        };
    }
    ClientOutcome::Rejected
}

/// GETs `/metrics` and parses the snapshot.
fn fetch_metrics(addr: SocketAddr) -> Option<ServerMetrics> {
    let body = fetch(addr, "/metrics")?;
    serde_json::from_str(&body).ok()
}

/// GETs `/healthz` and extracts the `status` field.
fn fetch_healthz_status(addr: SocketAddr) -> Option<String> {
    let body = fetch(addr, "/healthz")?;
    match serde_json::from_str::<Value>(&body).ok()? {
        Value::Map(map) => {
            map.into_iter()
                .find(|(k, _)| k == "status")
                .and_then(|(_, v)| match v {
                    Value::Str(s) => Some(s),
                    _ => None,
                })
        }
        _ => None,
    }
}

/// One plain GET, returning the body.
fn fetch(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut reader = BufReader::new(stream);
    let head = read_response_head_full(&mut reader).ok()?;
    if head.status != 200 {
        return None;
    }
    let mut body = vec![0u8; head.content_length];
    std::io::Read::read_exact(&mut reader, &mut body).ok()?;
    Some(String::from_utf8_lossy(&body).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_is_deterministic_and_leak_free() {
        let a = run_chaos_soak(7);
        let b = run_chaos_soak(7);
        assert_eq!(a.requests, SOAK_REQUESTS);
        assert_eq!(a.leaked_slots, 0);
        assert_eq!(
            a.completed + a.timed_out + a.cancelled + a.failed,
            a.requests,
            "every admitted soak request must terminate"
        );
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.timed_out, b.timed_out);
        assert_eq!(a.cancelled, b.cancelled);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.panics_contained, b.panics_contained);
        assert_eq!(a.steps, b.steps);
    }
}
