//! Fig. 7 — prefill latency (TTFT) for the three models across input
//! lengths (~32/128/512/1024) and cache ratios (25/50/75 %), with speedups
//! relative to kTransformers.
//!
//! Paper shape: HybriMoE lowest everywhere (avg ~1.33x over kTransformers);
//! llama.cpp far worst at prefill (whole CPU layers serialize the heavy
//! batch); AdapMoE competitive because prefill loads amortize over many
//! tokens.

use hybrimoe::report::Table;
use hybrimoe::Framework;
use hybrimoe_bench::{run_prefill, secs, CACHE_RATIOS, SEED};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::LengthBucket;

fn main() {
    println!("== Fig. 7: prefill latency (TTFT), seed {SEED:#x} ==\n");
    let mut speedups = Vec::new();
    for model in ModelConfig::paper_models() {
        for ratio in CACHE_RATIOS {
            let mut table = Table::new(
                std::iter::once("framework".to_owned())
                    .chain(LengthBucket::ALL.iter().map(|b| format!("{b} tok")))
                    .chain(std::iter::once("avg speedup".to_owned()))
                    .collect(),
            );
            let mut base = Vec::new();
            for bucket in LengthBucket::ALL {
                let m = run_prefill(
                    Framework::KTransformers,
                    &model,
                    ratio,
                    bucket.tokens(),
                    SEED,
                );
                base.push(m.ttft());
            }
            for framework in Framework::ALL {
                let mut row = vec![framework.to_string()];
                let mut ratios = Vec::new();
                for (i, bucket) in LengthBucket::ALL.iter().enumerate() {
                    let ttft = if framework == Framework::KTransformers {
                        base[i]
                    } else {
                        run_prefill(framework, &model, ratio, bucket.tokens(), SEED).ttft()
                    };
                    ratios.push(base[i].as_nanos() as f64 / ttft.as_nanos() as f64);
                    row.push(secs(ttft));
                }
                let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
                if framework == Framework::HybriMoe {
                    speedups.push(avg);
                }
                row.push(format!("{avg:.2}x"));
                table.push_row(row);
            }
            println!(
                "-- {} with {:.0}% cache ratio --\n{table}",
                model.name,
                ratio * 100.0
            );
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("HybriMoE average prefill speedup vs kTransformers: {avg:.2}x (paper: 1.33x)");
}
