//! Table III — ablation breakdown of the proposed techniques, measured for
//! Qwen2 with a 25% expert cache ratio (as in the paper): baseline
//! (kTransformers), baseline + hybrid scheduling, baseline + impact-driven
//! prefetching, baseline + score-aware caching (decode only in the paper),
//! and everything combined.
//!
//! Paper shape (speedup over baseline): prefill — scheduling 1.26x,
//! prefetching 1.06x, all 1.31x; decode — scheduling 1.46x, prefetching
//! 1.15x, caching 1.38x, all 1.86x. Scheduling contributes most,
//! prefetching least, and the techniques compose.

use hybrimoe::report::Table;
use hybrimoe::{CachePolicyKind, EngineConfig, Framework, PrefetcherKind, SchedulerKind};
use hybrimoe_bench::{run_decode_config, run_prefill_config, secs, DECODE_STEPS, SEED};
use hybrimoe_model::ModelConfig;

const PREFILL_TOKENS: u32 = 128;
const CACHE_RATIO: f64 = 0.25;

fn variants(model: &ModelConfig) -> Vec<(&'static str, EngineConfig)> {
    let base = || EngineConfig::preset(Framework::KTransformers, model.clone(), CACHE_RATIO);
    vec![
        ("Baseline", base()),
        (
            "Baseline+Scheduling",
            base().with_scheduler(SchedulerKind::Hybrid),
        ),
        (
            "Baseline+Prefetching",
            base().with_prefetcher(PrefetcherKind::ImpactDriven),
        ),
        (
            "Baseline+Caching",
            base().with_cache_policy(CachePolicyKind::Mrs),
        ),
        (
            "All",
            EngineConfig::preset(Framework::HybriMoe, model.clone(), CACHE_RATIO),
        ),
    ]
}

fn main() {
    let model = ModelConfig::qwen2();
    println!(
        "== Table III: ablation, {} @ {:.0}% cache, prefill {} tokens / decode {} steps, seed {:#x} ==\n",
        model.name,
        CACHE_RATIO * 100.0,
        PREFILL_TOKENS,
        DECODE_STEPS,
        SEED
    );

    for stage in ["Prefill", "Decode"] {
        let mut table = Table::new(vec!["technique".into(), "latency".into(), "speedup".into()]);
        let mut baseline_ns = 0u64;
        for (name, config) in variants(&model) {
            // The paper's prefill table has no caching-only row (the cache
            // cannot influence a single forward pass).
            if stage == "Prefill" && name == "Baseline+Caching" {
                continue;
            }
            let latency = if stage == "Prefill" {
                run_prefill_config(config, PREFILL_TOKENS, SEED).total
            } else {
                run_decode_config(config, DECODE_STEPS, SEED).total
            };
            if name == "Baseline" {
                baseline_ns = latency.as_nanos();
            }
            table.push_row(vec![
                name.to_owned(),
                secs(latency),
                format!("{:.2}x", baseline_ns as f64 / latency.as_nanos() as f64),
            ]);
        }
        println!("-- {stage} --\n{table}");
    }
    println!("paper: prefill 1.26/1.06/1.31x; decode 1.46/1.15/1.38/1.86x");
}
