//! Table II — configuration of the three evaluated MoE models, extended
//! with the derived per-expert byte/FLOP accounting the cost model uses.

use hybrimoe::report::Table;
use hybrimoe_model::ModelConfig;

fn main() {
    println!("== Table II: evaluated MoE model configurations ==\n");
    let mut table = Table::new(vec![
        "".into(),
        "Mixtral".into(),
        "Qwen2".into(),
        "DeepSeek".into(),
    ]);
    let models = [
        ModelConfig::mixtral(),
        ModelConfig::qwen2(),
        ModelConfig::deepseek(),
    ];
    let row = |label: &str, f: &dyn Fn(&ModelConfig) -> String| {
        let mut r = vec![label.to_owned()];
        r.extend(models.iter().map(f));
        r
    };
    table.push_row(row("#Layers", &|m| m.layers.to_string()));
    table.push_row(row("#Shared Experts", &|m| m.shared_experts.to_string()));
    table.push_row(row("#Routed Experts", &|m| m.routed_experts.to_string()));
    table.push_row(row("#Activated Experts", &|m| {
        m.activated_experts.to_string()
    }));
    table.push_row(row("Shared Expert Size", &|m| match m.shared_shape {
        Some(s) => format!("({}, {})", s.hidden(), s.inter()),
        None => "/".to_owned(),
    }));
    table.push_row(row("Routed Expert Size", &|m| {
        format!("({}, {})", m.routed_shape.hidden(), m.routed_shape.inter())
    }));
    table.push_row(row("Routed expert MBytes (Q4)", &|m| {
        format!("{:.1}", m.routed_shape.packed_bytes() as f64 / 1e6)
    }));
    table.push_row(row("Routed expert MFLOP/token", &|m| {
        format!("{:.1}", m.routed_shape.flops_per_token() as f64 / 1e6)
    }));
    table.push_row(row("All routed experts (GB)", &|m| {
        format!("{:.1}", m.total_routed_bytes() as f64 / 1e9)
    }));
    println!("{table}");
    println!(
        "note: Qwen2 routed expert size uses the published checkpoint value (3584, 2560);\n\
         the paper's table prints the dense-FFN width (see DESIGN.md §2)."
    );
}
