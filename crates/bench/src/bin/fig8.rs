//! Fig. 8 — decode stage latency (TBT) for the three models across cache
//! ratios, with speedups relative to kTransformers.
//!
//! Paper shape: HybriMoE lowest everywhere (avg ~1.70x over kTransformers);
//! llama.cpp is competitive at decode (unlike prefill); AdapMoE suffers
//! from paying PCIe for every miss.

use hybrimoe::report::{percent, speedup, Table};
use hybrimoe::Framework;
use hybrimoe_bench::{millis, run_decode, CACHE_RATIOS, DECODE_STEPS, SEED};
use hybrimoe_model::ModelConfig;

fn main() {
    println!("== Fig. 8: decode latency (TBT), {DECODE_STEPS} steps, seed {SEED:#x} ==\n");
    let mut speedups = Vec::new();
    for model in ModelConfig::paper_models() {
        let mut table = Table::new(vec![
            "cache".into(),
            "framework".into(),
            "TBT".into(),
            "speedup vs KTrans".into(),
            "hit rate".into(),
        ]);
        for ratio in CACHE_RATIOS {
            let ktrans = run_decode(Framework::KTransformers, &model, ratio, DECODE_STEPS, SEED);
            let base = ktrans.mean_step_latency();
            for framework in Framework::ALL {
                let m = if framework == Framework::KTransformers {
                    ktrans.clone()
                } else {
                    run_decode(framework, &model, ratio, DECODE_STEPS, SEED)
                };
                let tbt = m.mean_step_latency();
                if framework == Framework::HybriMoe {
                    speedups.push(base.as_nanos() as f64 / tbt.as_nanos() as f64);
                }
                table.push_row(vec![
                    format!("{:.0}%", ratio * 100.0),
                    framework.to_string(),
                    millis(tbt),
                    speedup(base.as_nanos(), tbt.as_nanos()),
                    percent(m.hit_rate()),
                ]);
            }
        }
        println!("-- {} --\n{table}", model.name);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("HybriMoE average decode speedup vs kTransformers: {avg:.2}x (paper: 1.70x)");
}
