//! CI perf-regression gate: re-runs the serving sweep and diffs it against
//! the committed `BENCH_serve.json` snapshot.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin bench_check                 # gate vs BENCH_serve.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --baseline x.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --fresh serve_bench.json
//! ```
//!
//! `--fresh <path>` reuses an already-computed sweep JSON (e.g. the
//! artifact the CI smoke job's `serve_bench --json --out` step just
//! wrote) instead of re-running the whole sweep — the sweep is
//! deterministic, so the two are interchangeable.
//!
//! The gate fails (exit code 1) if HybriMoE's decode throughput at cache
//! ratio 0.25 drops more than [`TOLERANCE`] below the snapshot on any
//! swept arrival rate (at any swept GPU count). The simulation is
//! deterministic, so on an unchanged engine the fresh run reproduces the
//! snapshot exactly; a failure means a code change slowed the modeled
//! system down — refresh the snapshot deliberately with
//! `serve_bench --json --out BENCH_serve.json` if the regression is
//! intended and justified.
//!
//! Gate points present in the fresh sweep but absent from the snapshot are
//! reported and tolerated (they appear when the sweep grows an axis);
//! snapshot gate points missing from the fresh sweep fail the gate (the
//! sweep silently shrank).

use hybrimoe_bench::{serve_sweep, ServeLoad, ServeRow, SEED};
use hybrimoe_model::ModelConfig;

/// Maximum tolerated relative throughput drop at a gate point.
const TOLERANCE: f64 = 0.15;

/// The cache ratio the gate watches (the paper's tight memory point).
const GATE_RATIO: f64 = 0.25;

/// The framework the gate protects.
const GATE_FRAMEWORK: &str = "HybriMoE";

/// A gate point's identity within the sweep.
fn gate_key(row: &ServeRow) -> Option<(u64, usize)> {
    if row.framework != GATE_FRAMEWORK || row.summary.cache_ratio != GATE_RATIO {
        return None;
    }
    // Arrival rates are exact f64 constants shared by both sides; key on
    // bits to avoid float-compare pitfalls.
    Some((
        row.summary.arrival_rate_per_sec.to_bits(),
        row.summary.num_gpus,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());

    let raw = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline: Vec<ServeRow> = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot parse baseline {baseline_path}: {e}");
        std::process::exit(2);
    });

    println!(
        "bench_check: gating {GATE_FRAMEWORK} throughput at ratio {GATE_RATIO} \
         (tolerance -{:.0}%) against {baseline_path}",
        TOLERANCE * 100.0
    );
    let fresh_path = args
        .iter()
        .position(|a| a == "--fresh")
        .and_then(|i| args.get(i + 1).cloned());
    let fresh: Vec<ServeRow> = match fresh_path {
        Some(path) => {
            println!("bench_check: reusing fresh sweep from {path}");
            let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("bench_check: cannot read fresh sweep {path}: {e}");
                std::process::exit(2);
            });
            serde_json::from_str(&raw).unwrap_or_else(|e| {
                eprintln!("bench_check: cannot parse fresh sweep {path}: {e}");
                std::process::exit(2);
            })
        }
        None => serve_sweep(&ModelConfig::deepseek(), ServeLoad::default(), SEED),
    };

    let mut failures = Vec::new();
    let mut compared = 0usize;
    for row in fresh.iter().filter(|r| gate_key(r).is_some()) {
        let key = gate_key(row).expect("filtered");
        let Some(base) = baseline.iter().find(|b| gate_key(b) == Some(key)) else {
            println!(
                "  new gate point (not in snapshot): rate {:.1}/s, {} GPU(s) -> {:.2} tok/s",
                row.summary.arrival_rate_per_sec,
                row.summary.num_gpus,
                row.summary.output_tokens_per_sec
            );
            continue;
        };
        compared += 1;
        let was = base.summary.output_tokens_per_sec;
        let now = row.summary.output_tokens_per_sec;
        let delta = if was > 0.0 { now / was - 1.0 } else { 0.0 };
        let verdict = if now < was * (1.0 - TOLERANCE) {
            failures.push(format!(
                "rate {:.1}/s, {} GPU(s): {now:.2} tok/s is {:.1}% below snapshot {was:.2}",
                row.summary.arrival_rate_per_sec,
                row.summary.num_gpus,
                -delta * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  rate {:.1}/s, {} GPU(s): snapshot {was:>8.2} tok/s, fresh {now:>8.2} tok/s \
             ({:+.1}%) {verdict}",
            row.summary.arrival_rate_per_sec,
            row.summary.num_gpus,
            delta * 100.0
        );
    }

    // Snapshot gate points the fresh sweep no longer covers: the sweep
    // shrank, which would silently disarm the gate.
    for base in baseline.iter().filter(|b| gate_key(b).is_some()) {
        let key = gate_key(base).expect("filtered");
        if !fresh.iter().any(|r| gate_key(r) == Some(key)) {
            failures.push(format!(
                "gate point rate {:.1}/s, {} GPU(s) vanished from the sweep",
                base.summary.arrival_rate_per_sec, base.summary.num_gpus
            ));
        }
    }

    if compared == 0 && failures.is_empty() {
        eprintln!("bench_check: snapshot has no gate points; refresh BENCH_serve.json");
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_check: {compared} gate point(s) within tolerance");
    } else {
        eprintln!("bench_check: FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
