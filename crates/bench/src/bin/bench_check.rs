//! CI perf-regression gates: the serving sweep vs the committed
//! `BENCH_serve.json` snapshot, and the real-backend kernel sweep vs the
//! committed `BENCH_real.json` snapshot.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin bench_check                 # gate vs committed snapshots
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --baseline x.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --fresh serve_bench.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --real-fresh real_bench.json
//! ```
//!
//! `--fresh <path>` / `--real-fresh <path>` reuse already-computed sweep
//! JSON (e.g. the artifacts the CI smoke job's `serve_bench` /
//! `real_bench` steps just wrote) instead of re-running the sweeps.
//!
//! **Serve gate**: fails (exit code 1) if HybriMoE's decode throughput at
//! cache ratio 0.25 drops more than [`TOLERANCE`] below the snapshot on
//! any swept arrival rate (at any swept GPU count). The simulation is
//! deterministic, so on an unchanged engine the fresh run reproduces the
//! snapshot exactly; a failure means a code change slowed the modeled
//! system down — refresh the snapshot deliberately with
//! `serve_bench --json --out BENCH_serve.json` if the regression is
//! intended and justified.
//!
//! **Real gate**: fails if the expert-major batched executor's *speedup*
//! over the token-major reference at any batch ≥ [`REAL_GATE_BATCH`] point
//! drops more than [`TOLERANCE`] below the committed snapshot. The gate
//! compares speedups, not absolute tokens/s: wall-clock rates differ
//! across machines, but the within-run ratio of the two paths (measured
//! back to back on identical inputs) is portable. Refresh deliberately
//! with `real_bench --json --out BENCH_real.json`.
//!
//! For both gates, points present in the fresh sweep but absent from the
//! snapshot are reported and tolerated (they appear when a sweep grows an
//! axis); snapshot gate points missing from the fresh sweep fail the gate
//! (the sweep silently shrank).

use hybrimoe_bench::{real_sweep, serve_sweep, RealRow, ServeLoad, ServeRow, SEED};
use hybrimoe_model::ModelConfig;

/// Maximum tolerated relative throughput drop at a gate point.
const TOLERANCE: f64 = 0.15;

/// The cache ratio the gate watches (the paper's tight memory point).
const GATE_RATIO: f64 = 0.25;

/// The framework the gate protects.
const GATE_FRAMEWORK: &str = "HybriMoE";

/// Minimum batch size of real-backend gate points: the expert-major win
/// the ISSUE promises (and the snapshot records) is for batched decode;
/// single-token layers have nothing to amortize and stay ungated.
const REAL_GATE_BATCH: usize = 8;

/// A gate point's identity within the sweep.
fn gate_key(row: &ServeRow) -> Option<(u64, usize)> {
    if row.framework != GATE_FRAMEWORK || row.summary.cache_ratio != GATE_RATIO {
        return None;
    }
    // Arrival rates are exact f64 constants shared by both sides; key on
    // bits to avoid float-compare pitfalls.
    Some((
        row.summary.arrival_rate_per_sec.to_bits(),
        row.summary.num_gpus,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());

    let raw = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline: Vec<ServeRow> = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot parse baseline {baseline_path}: {e}");
        std::process::exit(2);
    });

    println!(
        "bench_check: gating {GATE_FRAMEWORK} throughput at ratio {GATE_RATIO} \
         (tolerance -{:.0}%) against {baseline_path}",
        TOLERANCE * 100.0
    );
    let fresh_path = args
        .iter()
        .position(|a| a == "--fresh")
        .and_then(|i| args.get(i + 1).cloned());
    let fresh: Vec<ServeRow> = match fresh_path {
        Some(path) => {
            println!("bench_check: reusing fresh sweep from {path}");
            let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("bench_check: cannot read fresh sweep {path}: {e}");
                std::process::exit(2);
            });
            serde_json::from_str(&raw).unwrap_or_else(|e| {
                eprintln!("bench_check: cannot parse fresh sweep {path}: {e}");
                std::process::exit(2);
            })
        }
        None => serve_sweep(&ModelConfig::deepseek(), ServeLoad::default(), SEED),
    };

    let mut failures = Vec::new();
    let mut compared = 0usize;
    for row in fresh.iter().filter(|r| gate_key(r).is_some()) {
        let key = gate_key(row).expect("filtered");
        let Some(base) = baseline.iter().find(|b| gate_key(b) == Some(key)) else {
            println!(
                "  new gate point (not in snapshot): rate {:.1}/s, {} GPU(s) -> {:.2} tok/s",
                row.summary.arrival_rate_per_sec,
                row.summary.num_gpus,
                row.summary.output_tokens_per_sec
            );
            continue;
        };
        compared += 1;
        let was = base.summary.output_tokens_per_sec;
        let now = row.summary.output_tokens_per_sec;
        let delta = if was > 0.0 { now / was - 1.0 } else { 0.0 };
        let verdict = if now < was * (1.0 - TOLERANCE) {
            failures.push(format!(
                "rate {:.1}/s, {} GPU(s): {now:.2} tok/s is {:.1}% below snapshot {was:.2}",
                row.summary.arrival_rate_per_sec,
                row.summary.num_gpus,
                -delta * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  rate {:.1}/s, {} GPU(s): snapshot {was:>8.2} tok/s, fresh {now:>8.2} tok/s \
             ({:+.1}%) {verdict}",
            row.summary.arrival_rate_per_sec,
            row.summary.num_gpus,
            delta * 100.0
        );
    }

    // Snapshot gate points the fresh sweep no longer covers: the sweep
    // shrank, which would silently disarm the gate.
    for base in baseline.iter().filter(|b| gate_key(b).is_some()) {
        let key = gate_key(base).expect("filtered");
        if !fresh.iter().any(|r| gate_key(r) == Some(key)) {
            failures.push(format!(
                "gate point rate {:.1}/s, {} GPU(s) vanished from the sweep",
                base.summary.arrival_rate_per_sec, base.summary.num_gpus
            ));
        }
    }

    if compared == 0 && failures.is_empty() {
        eprintln!("bench_check: snapshot has no gate points; refresh BENCH_serve.json");
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_check: serve gate — {compared} point(s) within tolerance");
    }

    // ---- Real-backend gate: expert-major speedup over the token-major
    // reference must not regress at any batched gate point. ----
    let real_baseline_path = args
        .iter()
        .position(|a| a == "--real-baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_real.json".to_owned());
    let raw = std::fs::read_to_string(&real_baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read real baseline {real_baseline_path}: {e}");
        std::process::exit(2);
    });
    let real_baseline: Vec<RealRow> = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot parse real baseline {real_baseline_path}: {e}");
        std::process::exit(2);
    });
    println!(
        "bench_check: gating expert-major speedup at batch >= {REAL_GATE_BATCH} \
         (tolerance -{:.0}%) against {real_baseline_path}",
        TOLERANCE * 100.0
    );
    let real_fresh_path = args
        .iter()
        .position(|a| a == "--real-fresh")
        .and_then(|i| args.get(i + 1).cloned());
    let real_fresh: Vec<RealRow> = match real_fresh_path {
        Some(path) => {
            println!("bench_check: reusing fresh real sweep from {path}");
            let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("bench_check: cannot read fresh real sweep {path}: {e}");
                std::process::exit(2);
            });
            serde_json::from_str(&raw).unwrap_or_else(|e| {
                eprintln!("bench_check: cannot parse fresh real sweep {path}: {e}");
                std::process::exit(2);
            })
        }
        None => real_sweep(SEED),
    };

    let real_key = |r: &RealRow| -> Option<(usize, u16, usize)> {
        (r.batch >= REAL_GATE_BATCH).then_some((r.batch, r.experts, r.threads))
    };
    // Per-point deltas are informational: individual wall-clock ratios
    // wobble by tens of percent on shared hosts. The gate criterion is the
    // *median* speedup across all gate points, which is stable.
    let fresh_gate: Vec<RealRow> = real_fresh
        .iter()
        .filter(|r| real_key(r).is_some())
        .cloned()
        .collect();
    let base_gate: Vec<RealRow> = real_baseline
        .iter()
        .filter(|b| real_key(b).is_some())
        .cloned()
        .collect();
    for row in &fresh_gate {
        let key = real_key(row).expect("filtered");
        match base_gate.iter().find(|b| real_key(b) == Some(key)) {
            Some(base) => {
                let delta = if base.speedup > 0.0 {
                    row.speedup / base.speedup - 1.0
                } else {
                    0.0
                };
                println!(
                    "  batch {:>2}, {} experts, {} thread(s): snapshot {:>5.2}x, fresh \
                     {:>5.2}x ({:+.1}%)",
                    row.batch,
                    row.experts,
                    row.threads,
                    base.speedup,
                    row.speedup,
                    delta * 100.0
                );
            }
            None => println!(
                "  new real gate point (not in snapshot): batch {}, {} experts, {} thread(s) \
                 -> {:.2}x",
                row.batch, row.experts, row.threads, row.speedup
            ),
        }
    }
    for base in &base_gate {
        let key = real_key(base).expect("filtered");
        if !fresh_gate.iter().any(|r| real_key(r) == Some(key)) {
            failures.push(format!(
                "real gate point batch {}, {} experts, {} thread(s) vanished from the sweep",
                base.batch, base.experts, base.threads
            ));
        }
    }
    // Medians are computed over the *key intersection* only: growing a
    // sweep axis must not shift what the gate measures (new points are
    // reported above, gated once the snapshot is refreshed to include
    // them).
    let fresh_common: Vec<RealRow> = fresh_gate
        .iter()
        .filter(|r| base_gate.iter().any(|b| real_key(b) == real_key(r)))
        .cloned()
        .collect();
    let base_common: Vec<RealRow> = base_gate
        .iter()
        .filter(|b| fresh_gate.iter().any(|r| real_key(r) == real_key(b)))
        .cloned()
        .collect();
    let real_compared = fresh_common.len();
    let vanished = base_gate.len() - base_common.len();
    if real_compared == 0 && vanished == 0 {
        eprintln!("bench_check: real snapshot has no gate points; refresh BENCH_real.json");
        std::process::exit(2);
    }
    let fresh_median = hybrimoe_bench::median_speedup(&fresh_common);
    let base_median = hybrimoe_bench::median_speedup(&base_common);
    println!(
        "  median speedup over {real_compared} shared gate point(s): {fresh_median:.2}x \
         (snapshot median {base_median:.2}x)"
    );
    if real_compared > 0 && fresh_median < base_median * (1.0 - TOLERANCE) {
        failures.push(format!(
            "real: median speedup {fresh_median:.2}x is {:.1}% below snapshot median \
             {base_median:.2}x",
            (1.0 - fresh_median / base_median) * 100.0
        ));
    }

    if failures.is_empty() {
        println!(
            "bench_check: all gates passed ({compared} serve + {real_compared} real point(s))"
        );
    } else {
        eprintln!("bench_check: FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
