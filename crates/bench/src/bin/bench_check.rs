//! CI perf-regression gates: the serving sweep vs the committed
//! `BENCH_serve.json` snapshot, the predictive-prefetch sweep vs the
//! committed `BENCH_prefetch.json` snapshot, the real-backend kernel
//! sweep vs the committed `BENCH_real.json` snapshot, the
//! network-serving load vs the committed `BENCH_server.json` snapshot,
//! and the distributed-worker sweep vs the committed `BENCH_worker.json`
//! snapshot.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin bench_check                 # gate vs committed snapshots
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --baseline x.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --fresh serve_bench.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --prefetch-fresh prefetch_bench.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --real-fresh real_bench.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --server-fresh server_bench.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --worker-fresh worker_bench.json
//! cargo run -p hybrimoe_bench --release --bin bench_check -- --chaos-fresh chaos_bench.json
//! ```
//!
//! `--fresh <path>` / `--prefetch-fresh <path>` / `--real-fresh <path>` /
//! `--server-fresh <path>` / `--worker-fresh <path>` reuse
//! already-computed sweep JSON (e.g. the artifacts the CI smoke job's
//! `serve_bench` / `prefetch_bench` / `real_bench` / `load_gen` /
//! `worker_bench` steps just wrote) instead of re-running the sweeps.
//!
//! **Prefetch gate**: fails if any prefetch-sweep configuration's cache
//! hit ratio *or* decode throughput at cache ratio 0.25 drops more than
//! [`TOLERANCE`] below the committed snapshot, or if a snapshot point
//! vanished from the sweep. Refresh deliberately with
//! `prefetch_bench --json --out BENCH_prefetch.json`.
//!
//! **Serve gate**: fails (exit code 1) if HybriMoE's decode throughput at
//! cache ratio 0.25 drops more than [`TOLERANCE`] below the snapshot on
//! any swept arrival rate (at any swept GPU count). The simulation is
//! deterministic, so on an unchanged engine the fresh run reproduces the
//! snapshot exactly; a failure means a code change slowed the modeled
//! system down — refresh the snapshot deliberately with
//! `serve_bench --json --out BENCH_serve.json` if the regression is
//! intended and justified.
//!
//! **Real gate**: fails if the expert-major batched executor's *speedup*
//! over the token-major reference at any batch ≥ [`REAL_GATE_BATCH`] point
//! drops more than [`TOLERANCE`] below the committed snapshot. The gate
//! compares speedups, not absolute tokens/s: wall-clock rates differ
//! across machines, but the within-run ratio of the two paths (measured
//! back to back on identical inputs) is portable. Refresh deliberately
//! with `real_bench --json --out BENCH_real.json`.
//!
//! **Server gate**: fails if the network-serving load shows any request
//! shortfall (`completed < requests`) or a client-observed p99 TTFT more
//! than [`TOLERANCE`] above the committed snapshot. The load's engine
//! steps run against a pacing floor that dominates per-step compute, so
//! the TTFT distribution is a property of the queueing structure, not of
//! host speed. Refresh deliberately with
//! `load_gen --json --out BENCH_server.json`.
//!
//! **Worker gate**: two checks over the distributed-worker sweep. First,
//! each (workers, pipelining) series' *median remote-vs-local speedup* at
//! batch ≥ [`WORKER_GATE_BATCH`] must not drop more than [`TOLERANCE`]
//! below the committed snapshot (same median construction as the real
//! gate — wall-clock points wobble, within-run ratios are portable).
//! Second, an absolute scaling check on the fresh sweep alone: every
//! pipelined multi-worker series' median throughput over the
//! single-worker pipelined series at the gated batch sizes must hold
//! parity ([`TOLERANCE`]-backed, since a single-core CI host serializes
//! the workers and gets exactly parity). Refresh deliberately with
//! `worker_bench --json --out BENCH_worker.json`.
//!
//! **Chaos gate**: pure invariants on one chaos run (`BENCH_chaos.json`
//! or `--chaos-fresh`): every soak request terminated (completed +
//! timed_out + cancelled + failed == requests) with zero leaked slots,
//! and the real-server phase's booleans (all requests terminated, final
//! metrics balance, `/healthz` consistent) all hold. Determinism is
//! checked separately by CI, which runs `chaos_bench` twice and diffs the
//! JSON byte for byte. Refresh deliberately with
//! `chaos_bench --json --out BENCH_chaos.json`.
//!
//! For the sweep gates, points present in the fresh sweep but absent from
//! the snapshot are reported and tolerated (they appear when a sweep
//! grows an axis); snapshot gate points missing from the fresh sweep fail
//! the gate (the sweep silently shrank).

use hybrimoe_bench::{
    median_f64, prefetch_point_key, prefetch_sweep, real_sweep, run_chaos_bench, run_server_bench,
    same_rate, serve_sweep, worker_point_key, worker_sweep, ChaosSummary, PrefetchRow, RealRow,
    ServeLoad, ServeRow, ServerBenchSummary, ServerLoad, WorkerRow, PREFETCH_RATIO, SEED,
    WORKER_GATE_BATCH,
};
use hybrimoe_model::ModelConfig;

/// Maximum tolerated relative regression at a gate point: throughput drop
/// for the serve and real gates, p99-TTFT growth for the server gate.
const TOLERANCE: f64 = 0.15;

/// The cache ratio the gate watches (the paper's tight memory point).
const GATE_RATIO: f64 = 0.25;

/// The framework the gate protects.
const GATE_FRAMEWORK: &str = "HybriMoE";

/// Minimum batch size of real-backend gate points: the expert-major win
/// the ISSUE promises (and the snapshot records) is for batched decode;
/// single-token layers have nothing to amortize and stay ungated.
const REAL_GATE_BATCH: usize = 8;

/// Whether a serve-sweep row is one of the points the gate watches.
fn is_serve_gate_row(row: &ServeRow) -> bool {
    row.framework == GATE_FRAMEWORK && row.summary.cache_ratio == GATE_RATIO
}

/// Whether two gate rows describe the same sweep point. Arrival rates are
/// matched within a relative tolerance rather than bit-exactly: a rate is
/// realized as a quantized inter-arrival gap, so a baseline written by an
/// older binary can carry `3.000000003` where the sweep asks for `3.0`.
fn same_serve_point(a: &ServeRow, b: &ServeRow) -> bool {
    same_rate(
        a.summary.arrival_rate_per_sec,
        b.summary.arrival_rate_per_sec,
    ) && a.summary.num_gpus == b.summary.num_gpus
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn read_json<T: serde::Deserialize>(path: &str, what: &str) -> T {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {what} {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot parse {what} {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let baseline: Vec<ServeRow> = read_json(&baseline_path, "baseline");

    println!(
        "bench_check: gating {GATE_FRAMEWORK} throughput at ratio {GATE_RATIO} \
         (tolerance -{:.0}%) against {baseline_path}",
        TOLERANCE * 100.0
    );
    let fresh: Vec<ServeRow> = match flag_value(&args, "--fresh") {
        Some(path) => {
            println!("bench_check: reusing fresh sweep from {path}");
            read_json(&path, "fresh sweep")
        }
        None => serve_sweep(&ModelConfig::deepseek(), ServeLoad::default(), SEED),
    };

    let mut failures = Vec::new();
    let mut compared = 0usize;
    for row in fresh.iter().filter(|r| is_serve_gate_row(r)) {
        let base = baseline
            .iter()
            .filter(|b| is_serve_gate_row(b))
            .find(|b| same_serve_point(b, row));
        let Some(base) = base else {
            println!(
                "  new gate point (not in snapshot): rate {:.1}/s, {} GPU(s) -> {:.2} tok/s",
                row.summary.arrival_rate_per_sec,
                row.summary.num_gpus,
                row.summary.output_tokens_per_sec
            );
            continue;
        };
        compared += 1;
        let was = base.summary.output_tokens_per_sec;
        let now = row.summary.output_tokens_per_sec;
        let delta = if was > 0.0 { now / was - 1.0 } else { 0.0 };
        let verdict = if now < was * (1.0 - TOLERANCE) {
            failures.push(format!(
                "rate {:.1}/s, {} GPU(s): {now:.2} tok/s is {:.1}% below snapshot {was:.2}",
                row.summary.arrival_rate_per_sec,
                row.summary.num_gpus,
                -delta * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  rate {:.1}/s, {} GPU(s): snapshot {was:>8.2} tok/s, fresh {now:>8.2} tok/s \
             ({:+.1}%) {verdict}",
            row.summary.arrival_rate_per_sec,
            row.summary.num_gpus,
            delta * 100.0
        );
    }

    // Snapshot gate points the fresh sweep no longer covers: the sweep
    // shrank, which would silently disarm the gate.
    for base in baseline.iter().filter(|b| is_serve_gate_row(b)) {
        let covered = fresh
            .iter()
            .filter(|r| is_serve_gate_row(r))
            .any(|r| same_serve_point(r, base));
        if !covered {
            failures.push(format!(
                "gate point rate {:.1}/s, {} GPU(s) vanished from the sweep",
                base.summary.arrival_rate_per_sec, base.summary.num_gpus
            ));
        }
    }

    if compared == 0 && failures.is_empty() {
        eprintln!("bench_check: snapshot has no gate points; refresh BENCH_serve.json");
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_check: serve gate — {compared} point(s) within tolerance");
    }

    // ---- Prefetch gate: neither the cache hit ratio nor the throughput
    // of any prefetch-sweep configuration at the tight memory point may
    // regress past tolerance. ----
    let prefetch_baseline_path = flag_value(&args, "--prefetch-baseline")
        .unwrap_or_else(|| "BENCH_prefetch.json".to_owned());
    let prefetch_baseline: Vec<PrefetchRow> =
        read_json(&prefetch_baseline_path, "prefetch baseline");
    println!(
        "bench_check: gating prefetch hit ratio and throughput at ratio {PREFETCH_RATIO} \
         (tolerance -{:.0}%) against {prefetch_baseline_path}",
        TOLERANCE * 100.0
    );
    let prefetch_fresh: Vec<PrefetchRow> = match flag_value(&args, "--prefetch-fresh") {
        Some(path) => {
            println!("bench_check: reusing fresh prefetch sweep from {path}");
            read_json(&path, "fresh prefetch sweep")
        }
        None => prefetch_sweep(&ModelConfig::deepseek(), ServeLoad::default(), SEED),
    };

    let mut prefetch_compared = 0usize;
    for row in &prefetch_fresh {
        let Some(base) = prefetch_baseline
            .iter()
            .find(|b| prefetch_point_key(b) == prefetch_point_key(row))
        else {
            println!(
                "  new prefetch gate point (not in snapshot): {} look {} pipe {} chunk {} -> \
                 hit {:.1}%, {:.2} tok/s",
                row.prefetcher,
                row.lookahead,
                row.pipelined,
                row.chunked_prefill,
                row.cache_hit_ratio * 100.0,
                row.output_tokens_per_sec
            );
            continue;
        };
        prefetch_compared += 1;
        let hit_delta = if base.cache_hit_ratio > 0.0 {
            row.cache_hit_ratio / base.cache_hit_ratio - 1.0
        } else {
            0.0
        };
        let tput_delta = if base.output_tokens_per_sec > 0.0 {
            row.output_tokens_per_sec / base.output_tokens_per_sec - 1.0
        } else {
            0.0
        };
        let mut verdict = "ok";
        if row.cache_hit_ratio < base.cache_hit_ratio * (1.0 - TOLERANCE) {
            failures.push(format!(
                "prefetch {} look {} pipe {} chunk {}: hit ratio {:.3} is {:.1}% below \
                 snapshot {:.3}",
                row.prefetcher,
                row.lookahead,
                row.pipelined,
                row.chunked_prefill,
                row.cache_hit_ratio,
                -hit_delta * 100.0,
                base.cache_hit_ratio
            ));
            verdict = "FAIL";
        }
        if row.output_tokens_per_sec < base.output_tokens_per_sec * (1.0 - TOLERANCE) {
            failures.push(format!(
                "prefetch {} look {} pipe {} chunk {}: {:.2} tok/s is {:.1}% below snapshot \
                 {:.2}",
                row.prefetcher,
                row.lookahead,
                row.pipelined,
                row.chunked_prefill,
                row.output_tokens_per_sec,
                -tput_delta * 100.0,
                base.output_tokens_per_sec
            ));
            verdict = "FAIL";
        }
        println!(
            "  {:<16} look {} pipe {:<5} chunk {:>3}: hit {:>5.1}% ({:+.1}%), {:>8.2} tok/s \
             ({:+.1}%) {verdict}",
            row.prefetcher,
            row.lookahead,
            row.pipelined,
            row.chunked_prefill,
            row.cache_hit_ratio * 100.0,
            hit_delta * 100.0,
            row.output_tokens_per_sec,
            tput_delta * 100.0
        );
    }
    for base in &prefetch_baseline {
        if !prefetch_fresh
            .iter()
            .any(|r| prefetch_point_key(r) == prefetch_point_key(base))
        {
            failures.push(format!(
                "prefetch gate point {} look {} pipe {} chunk {} vanished from the sweep",
                base.prefetcher, base.lookahead, base.pipelined, base.chunked_prefill
            ));
        }
    }
    if prefetch_compared == 0 && failures.is_empty() {
        eprintln!("bench_check: prefetch snapshot has no gate points; refresh BENCH_prefetch.json");
        std::process::exit(2);
    }
    if failures.is_empty() {
        println!("bench_check: prefetch gate — {prefetch_compared} point(s) within tolerance");
    }

    // ---- Real-backend gate: expert-major speedup over the token-major
    // reference must not regress at any batched gate point. ----
    let real_baseline_path =
        flag_value(&args, "--real-baseline").unwrap_or_else(|| "BENCH_real.json".to_owned());
    let real_baseline: Vec<RealRow> = read_json(&real_baseline_path, "real baseline");
    println!(
        "bench_check: gating expert-major speedup at batch >= {REAL_GATE_BATCH} \
         (tolerance -{:.0}%) against {real_baseline_path}",
        TOLERANCE * 100.0
    );
    let real_fresh: Vec<RealRow> = match flag_value(&args, "--real-fresh") {
        Some(path) => {
            println!("bench_check: reusing fresh real sweep from {path}");
            read_json(&path, "fresh real sweep")
        }
        None => real_sweep(SEED),
    };

    // A real gate point's identity within the sweep. The backend is part
    // of the identity: each backend's speedup series is gated separately,
    // so a SIMD path that vanishes from the sweep or regresses fails CI
    // rather than silently blending into the scalar numbers.
    let point = |r: &RealRow| (r.backend.clone(), r.batch, r.experts, r.threads);
    // Per-point deltas are informational: individual wall-clock ratios
    // wobble by tens of percent on shared hosts. The gate criterion is the
    // per-backend *median* speedup across its gate points, which is stable.
    let fresh_gate: Vec<RealRow> = real_fresh
        .iter()
        .filter(|r| r.batch >= REAL_GATE_BATCH)
        .cloned()
        .collect();
    let base_gate: Vec<RealRow> = real_baseline
        .iter()
        .filter(|b| b.batch >= REAL_GATE_BATCH)
        .cloned()
        .collect();
    for row in &fresh_gate {
        match base_gate.iter().find(|b| point(b) == point(row)) {
            Some(base) => {
                let delta = if base.speedup > 0.0 {
                    row.speedup / base.speedup - 1.0
                } else {
                    0.0
                };
                println!(
                    "  {:>9}: batch {:>2}, {} experts, {} thread(s): snapshot {:>5.2}x, fresh \
                     {:>5.2}x ({:+.1}%)",
                    row.backend,
                    row.batch,
                    row.experts,
                    row.threads,
                    base.speedup,
                    row.speedup,
                    delta * 100.0
                );
            }
            None => println!(
                "  new real gate point (not in snapshot): {} batch {}, {} experts, {} thread(s) \
                 -> {:.2}x",
                row.backend, row.batch, row.experts, row.threads, row.speedup
            ),
        }
    }
    for base in &base_gate {
        if !fresh_gate.iter().any(|r| point(r) == point(base)) {
            failures.push(format!(
                "real gate point {} batch {}, {} experts, {} thread(s) vanished from the sweep",
                base.backend, base.batch, base.experts, base.threads
            ));
        }
    }
    // Per-backend medians over the *key intersection* only: growing a
    // sweep axis must not shift what the gate measures (new points are
    // reported above, gated once the snapshot is refreshed to include
    // them).
    let mut gate_backends: Vec<String> = base_gate.iter().map(|b| b.backend.clone()).collect();
    gate_backends.sort();
    gate_backends.dedup();
    let mut real_compared = 0usize;
    let mut base_covered = 0usize;
    for backend in &gate_backends {
        let fresh_common: Vec<RealRow> = fresh_gate
            .iter()
            .filter(|r| &r.backend == backend && base_gate.iter().any(|b| point(b) == point(r)))
            .cloned()
            .collect();
        let base_common: Vec<RealRow> = base_gate
            .iter()
            .filter(|b| &b.backend == backend && fresh_gate.iter().any(|r| point(r) == point(b)))
            .cloned()
            .collect();
        base_covered += base_common.len();
        if fresh_common.is_empty() {
            // Every point of this backend vanished — already reported as
            // vanished-point failures above.
            continue;
        }
        real_compared += fresh_common.len();
        let fresh_median = hybrimoe_bench::median_speedup(&fresh_common);
        let base_median = hybrimoe_bench::median_speedup(&base_common);
        println!(
            "  {backend}: median speedup over {} shared gate point(s): {fresh_median:.2}x \
             (snapshot median {base_median:.2}x)",
            fresh_common.len()
        );
        if fresh_median < base_median * (1.0 - TOLERANCE) {
            failures.push(format!(
                "real: {backend} median speedup {fresh_median:.2}x is {:.1}% below snapshot \
                 median {base_median:.2}x",
                (1.0 - fresh_median / base_median) * 100.0
            ));
        }
    }
    let vanished = base_gate.len() - base_covered;
    if real_compared == 0 && vanished == 0 {
        eprintln!("bench_check: real snapshot has no gate points; refresh BENCH_real.json");
        std::process::exit(2);
    }

    // ---- Server gate: the network-serving front-end must complete the
    // full load, and client-observed p99 TTFT must not regress. ----
    let server_baseline_path =
        flag_value(&args, "--server-baseline").unwrap_or_else(|| "BENCH_server.json".to_owned());
    let server_baseline: ServerBenchSummary = read_json(&server_baseline_path, "server baseline");
    println!(
        "bench_check: gating server p99 TTFT (tolerance +{:.0}%) against {server_baseline_path}",
        TOLERANCE * 100.0
    );
    let server_fresh: ServerBenchSummary = match flag_value(&args, "--server-fresh") {
        Some(path) => {
            println!("bench_check: reusing fresh server run from {path}");
            read_json(&path, "fresh server run")
        }
        None => run_server_bench(None, ServerLoad::default()),
    };

    println!(
        "  completed {}/{} (rejected {}, failed {})",
        server_fresh.completed, server_fresh.requests, server_fresh.rejected, server_fresh.failed
    );
    if server_fresh.completed < server_fresh.requests {
        failures.push(format!(
            "server: only {}/{} requests completed ({} rejected, {} failed)",
            server_fresh.completed,
            server_fresh.requests,
            server_fresh.rejected,
            server_fresh.failed
        ));
    }
    let was = server_baseline.ttft_p99_ms;
    let now = server_fresh.ttft_p99_ms;
    let delta = if was > 0.0 { now / was - 1.0 } else { 0.0 };
    let ttft_verdict = if was > 0.0 && now > was * (1.0 + TOLERANCE) {
        failures.push(format!(
            "server: p99 TTFT {now:.1} ms is {:.1}% above snapshot {was:.1} ms",
            delta * 100.0
        ));
        "FAIL"
    } else {
        "ok"
    };
    println!(
        "  p99 TTFT: snapshot {was:>8.1} ms, fresh {now:>8.1} ms ({:+.1}%) {ttft_verdict}",
        delta * 100.0
    );
    let server_compared = 1usize;

    // ---- Worker gate: the distributed-worker sweep's remote-vs-local
    // speedups must not regress against the snapshot, and pipelined
    // multi-worker throughput must hold parity with a single worker at
    // the gated batch sizes. ----
    let worker_baseline_path =
        flag_value(&args, "--worker-baseline").unwrap_or_else(|| "BENCH_worker.json".to_owned());
    let worker_baseline: Vec<WorkerRow> = read_json(&worker_baseline_path, "worker baseline");
    println!(
        "bench_check: gating worker speedups at batch >= {WORKER_GATE_BATCH} \
         (tolerance -{:.0}%) against {worker_baseline_path}",
        TOLERANCE * 100.0
    );
    let worker_fresh: Vec<WorkerRow> = match flag_value(&args, "--worker-fresh") {
        Some(path) => {
            println!("bench_check: reusing fresh worker sweep from {path}");
            read_json(&path, "fresh worker sweep")
        }
        None => worker_sweep(SEED),
    };

    let worker_fresh_gate: Vec<WorkerRow> = worker_fresh
        .iter()
        .filter(|r| r.batch >= WORKER_GATE_BATCH)
        .cloned()
        .collect();
    let worker_base_gate: Vec<WorkerRow> = worker_baseline
        .iter()
        .filter(|b| b.batch >= WORKER_GATE_BATCH)
        .cloned()
        .collect();
    for row in &worker_fresh_gate {
        match worker_base_gate
            .iter()
            .find(|b| worker_point_key(b) == worker_point_key(row))
        {
            Some(base) => {
                let delta = if base.speedup > 0.0 {
                    row.speedup / base.speedup - 1.0
                } else {
                    0.0
                };
                println!(
                    "  {} worker(s), pipelined {:<5}, batch {:>2}, {} experts: snapshot \
                     {:>5.2}x, fresh {:>5.2}x ({:+.1}%)",
                    row.workers,
                    row.pipelined,
                    row.batch,
                    row.experts,
                    base.speedup,
                    row.speedup,
                    delta * 100.0
                );
            }
            None => println!(
                "  new worker gate point (not in snapshot): {} worker(s), pipelined {}, \
                 batch {}, {} experts -> {:.2}x",
                row.workers, row.pipelined, row.batch, row.experts, row.speedup
            ),
        }
    }
    for base in &worker_base_gate {
        if !worker_fresh_gate
            .iter()
            .any(|r| worker_point_key(r) == worker_point_key(base))
        {
            failures.push(format!(
                "worker gate point {} worker(s), pipelined {}, batch {}, {} experts vanished \
                 from the sweep",
                base.workers, base.pipelined, base.batch, base.experts
            ));
        }
    }
    // Per-series (workers, pipelining) medians over the key intersection,
    // exactly like the real gate's per-backend medians.
    let mut worker_series: Vec<(usize, bool)> = worker_base_gate
        .iter()
        .map(|b| (b.workers, b.pipelined))
        .collect();
    worker_series.sort();
    worker_series.dedup();
    let mut worker_compared = 0usize;
    for (workers, pipelined) in &worker_series {
        let fresh_common: Vec<f64> = worker_fresh_gate
            .iter()
            .filter(|r| {
                r.workers == *workers
                    && r.pipelined == *pipelined
                    && worker_base_gate
                        .iter()
                        .any(|b| worker_point_key(b) == worker_point_key(r))
            })
            .map(|r| r.speedup)
            .collect();
        let base_common: Vec<f64> = worker_base_gate
            .iter()
            .filter(|b| {
                b.workers == *workers
                    && b.pipelined == *pipelined
                    && worker_fresh_gate
                        .iter()
                        .any(|r| worker_point_key(r) == worker_point_key(b))
            })
            .map(|b| b.speedup)
            .collect();
        if fresh_common.is_empty() {
            // Every point of this series vanished — already reported above.
            continue;
        }
        worker_compared += fresh_common.len();
        let fresh_median = median_f64(&fresh_common);
        let base_median = median_f64(&base_common);
        println!(
            "  {workers} worker(s), pipelined {pipelined}: median speedup over {} shared gate \
             point(s): {fresh_median:.2}x (snapshot median {base_median:.2}x)",
            fresh_common.len()
        );
        if fresh_median < base_median * (1.0 - TOLERANCE) {
            failures.push(format!(
                "worker: {workers} worker(s) pipelined {pipelined} median speedup \
                 {fresh_median:.2}x is {:.1}% below snapshot median {base_median:.2}x",
                (1.0 - fresh_median / base_median) * 100.0
            ));
        }
    }
    // Absolute scaling check on the fresh sweep: pipelined multi-worker
    // throughput vs the single-worker pipelined row at the same point.
    let single_worker = |batch: usize, experts: u16| {
        worker_fresh
            .iter()
            .find(|r| r.workers == 1 && r.pipelined && r.batch == batch && r.experts == experts)
            .map(|r| r.remote_tok_s)
    };
    let mut multi_counts: Vec<usize> = worker_fresh_gate
        .iter()
        .filter(|r| r.workers > 1 && r.pipelined)
        .map(|r| r.workers)
        .collect();
    multi_counts.sort_unstable();
    multi_counts.dedup();
    if multi_counts.is_empty() && !worker_fresh_gate.is_empty() {
        failures.push("worker: sweep has no pipelined multi-worker gate points".to_owned());
    }
    for workers in &multi_counts {
        let ratios: Vec<f64> = worker_fresh_gate
            .iter()
            .filter(|r| r.workers == *workers && r.pipelined)
            .filter_map(|r| single_worker(r.batch, r.experts).map(|s| r.remote_tok_s / s))
            .collect();
        let median = median_f64(&ratios);
        let verdict = if ratios.is_empty() || median < 1.0 - TOLERANCE {
            failures.push(format!(
                "worker: {workers} pipelined worker(s) median throughput is {median:.2}x of a \
                 single worker at batch >= {WORKER_GATE_BATCH} (need >= {:.2}x)",
                1.0 - TOLERANCE
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  scaling: {workers} pipelined worker(s) vs 1 at batch >= {WORKER_GATE_BATCH}: \
             median {median:.2}x over {} point(s) {verdict}",
            ratios.len()
        );
    }
    if worker_compared == 0 && worker_base_gate.is_empty() {
        eprintln!("bench_check: worker snapshot has no gate points; refresh BENCH_worker.json");
        std::process::exit(2);
    }

    // ---- Chaos gate: every admitted request terminates, no slot leaks,
    // the real server under faults keeps its books and stays alive. ----
    let chaos_fresh: ChaosSummary = match flag_value(&args, "--chaos-fresh") {
        Some(path) => {
            println!("bench_check: reusing fresh chaos run from {path}");
            read_json(&path, "fresh chaos run")
        }
        None => run_chaos_bench(SEED),
    };
    println!(
        "bench_check: chaos gate — soak {} requests: {} completed, {} timed out, {} cancelled, \
         {} failed, {} panic(s) contained, {} leaked slot(s)",
        chaos_fresh.soak_requests,
        chaos_fresh.soak_completed,
        chaos_fresh.soak_timed_out,
        chaos_fresh.soak_cancelled,
        chaos_fresh.soak_failed,
        chaos_fresh.soak_panics_contained,
        chaos_fresh.soak_leaked_slots
    );
    let soak_terminal = chaos_fresh.soak_completed
        + chaos_fresh.soak_timed_out
        + chaos_fresh.soak_cancelled
        + chaos_fresh.soak_failed;
    if soak_terminal != chaos_fresh.soak_requests {
        failures.push(format!(
            "chaos: soak terminal outcomes {soak_terminal} != {} admitted requests",
            chaos_fresh.soak_requests
        ));
    }
    if chaos_fresh.soak_leaked_slots != 0 {
        failures.push(format!(
            "chaos: soak leaked {} batch slot(s)",
            chaos_fresh.soak_leaked_slots
        ));
    }
    if chaos_fresh.soak_panics_contained == 0 {
        failures.push("chaos: soak contained no panics — the fault plan injected nothing".into());
    }
    if !chaos_fresh.server_all_terminated {
        failures.push("chaos: a server-phase request never reached a terminal outcome".into());
    }
    if !chaos_fresh.server_accounted {
        failures.push("chaos: server metrics do not balance after the storm".into());
    }
    if !chaos_fresh.server_healthz_consistent {
        failures.push("chaos: /healthz was unreachable or disagreed with the metrics".into());
    }
    let chaos_compared = 1usize;

    if failures.is_empty() {
        println!(
            "bench_check: all gates passed ({compared} serve + {prefetch_compared} prefetch + \
             {real_compared} real + {server_compared} server + {worker_compared} worker + \
             {chaos_compared} chaos point(s))"
        );
    } else {
        eprintln!("bench_check: FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
