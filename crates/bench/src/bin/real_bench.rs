//! Real-backend kernel benchmark: sweeps kernel backend × batch size ×
//! expert count × thread cap over the quantized CPU executor and reports
//! the measured tokens/s of the expert-major batched path against the
//! retained token-major scalar reference.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin real_bench                         # table + JSON
//! cargo run -p hybrimoe_bench --release --bin real_bench -- --json              # JSON only
//! cargo run -p hybrimoe_bench --release --bin real_bench -- --json --out x.json # also write a file
//! ```
//!
//! `BENCH_real.json` at the repo root is the committed snapshot; the
//! `bench_check` CI gate diffs a fresh run's *speedups* against it, per
//! backend (absolute tokens/s are machine-dependent, the within-run
//! speedup of the batched path over the reference is not — and a vanished
//! or regressed SIMD backend must fail the gate, not silently disappear).

use std::collections::BTreeMap;

use hybrimoe_bench::{real_bench_model, real_sweep, RealRow, SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let out_path = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("--out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });

    let model = real_bench_model();
    if !json_only {
        println!(
            "Real-backend execution — {} (hidden {}, inter {}), Q4 kernels, seed {SEED:#x}\n",
            model.name,
            model.routed_shape.hidden(),
            model.routed_shape.inter()
        );
        println!(
            "{:>9} {:>6} {:>8} {:>8} {:>18} {:>18} {:>9}",
            "backend",
            "batch",
            "experts",
            "threads",
            "expert-major t/s",
            "token-major t/s",
            "speedup"
        );
    }

    let rows: Vec<RealRow> = real_sweep(SEED);

    if !json_only {
        for r in &rows {
            println!(
                "{:>9} {:>6} {:>8} {:>8} {:>18.1} {:>18.1} {:>8.2}x",
                r.backend,
                r.batch,
                r.experts,
                r.threads,
                r.expert_major_tok_s,
                r.token_major_tok_s,
                r.speedup
            );
        }
        // Per-backend gate summaries: minimum speedup over the reference
        // at batch >= 8, plus each SIMD backend's expert-major throughput
        // ratio over the *scalar* expert-major path at the same points
        // (the ISSUE's ">= 2x tokens/s over the scalar reference" check).
        let mut scalar_at: BTreeMap<(usize, u16, usize), f64> = BTreeMap::new();
        for r in rows.iter().filter(|r| r.backend == "scalar") {
            scalar_at.insert((r.batch, r.experts, r.threads), r.expert_major_tok_s);
        }
        let backends: Vec<String> = {
            let mut seen = Vec::new();
            for r in &rows {
                if !seen.contains(&r.backend) {
                    seen.push(r.backend.clone());
                }
            }
            seen
        };
        println!();
        for backend in &backends {
            let gate: Vec<&RealRow> = rows
                .iter()
                .filter(|r| &r.backend == backend && r.batch >= 8)
                .collect();
            let min = gate.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
            let vs_scalar = gate
                .iter()
                .filter_map(|r| {
                    scalar_at
                        .get(&(r.batch, r.experts, r.threads))
                        .map(|s| r.expert_major_tok_s / s)
                })
                .fold(f64::INFINITY, f64::min);
            println!(
                "{backend:>9}: min speedup vs token-major at batch >= 8 across {} point(s): {min:.2}x; min vs scalar expert-major: {vs_scalar:.2}x",
                gate.len()
            );
        }
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        if !json_only {
            println!("wrote {path}");
        }
    }
    println!("{json}");
}
