//! Real-backend kernel benchmark: sweeps batch size × expert count ×
//! thread cap over the quantized CPU executor and reports the measured
//! tokens/s of the expert-major batched path against the retained
//! token-major reference.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin real_bench                         # table + JSON
//! cargo run -p hybrimoe_bench --release --bin real_bench -- --json              # JSON only
//! cargo run -p hybrimoe_bench --release --bin real_bench -- --json --out x.json # also write a file
//! ```
//!
//! `BENCH_real.json` at the repo root is the committed snapshot; the
//! `bench_check` CI gate diffs a fresh run's *speedups* against it
//! (absolute tokens/s are machine-dependent, the within-run speedup of the
//! batched path over the reference is not).

use hybrimoe_bench::{real_bench_model, real_sweep, RealRow, SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let out_path = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("--out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });

    let model = real_bench_model();
    if !json_only {
        println!(
            "Real-backend execution — {} (hidden {}, inter {}), Q4 kernels, seed {SEED:#x}\n",
            model.name,
            model.routed_shape.hidden(),
            model.routed_shape.inter()
        );
        println!(
            "{:>6} {:>8} {:>8} {:>18} {:>18} {:>9}",
            "batch", "experts", "threads", "expert-major t/s", "token-major t/s", "speedup"
        );
    }

    let rows: Vec<RealRow> = real_sweep(SEED);

    if !json_only {
        for r in &rows {
            println!(
                "{:>6} {:>8} {:>8} {:>18.1} {:>18.1} {:>8.2}x",
                r.batch, r.experts, r.threads, r.expert_major_tok_s, r.token_major_tok_s, r.speedup
            );
        }
        let gate: Vec<&RealRow> = rows.iter().filter(|r| r.batch >= 8).collect();
        let min = gate.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
        println!(
            "\nminimum speedup at batch >= 8 across {} point(s): {min:.2}x",
            gate.len()
        );
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        if !json_only {
            println!("wrote {path}");
        }
    }
    println!("{json}");
}
