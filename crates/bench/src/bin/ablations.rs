//! Design-choice ablations beyond the paper's Table III: sweeps over the
//! knobs DESIGN.md calls out, plus the greedy scheduler's optimality gap
//! against an exhaustive oracle (an evaluation the paper does not include).
//!
//! Panels:
//! * `alpha`    — MRS averaging coefficient α (Eq. 3)
//! * `topp`     — MRS top-P cutoff (the paper picks p = 2K)
//! * `discount` — impact-driven prefetch distance discount
//! * `steal`    — CPU work-stealing of cached experts on/off
//! * `oracle`   — hybrid scheduler vs exhaustive optimum
//! * `quant`    — Q4 vs Q8 expert transfers (mixed-precision offloading)
//! * `batch`    — batched decode serving (1-8 concurrent sequences)
//!
//! Run one panel: `cargo run -p hybrimoe-bench --release --bin ablations -- alpha`

use hybrimoe::report::{percent, Table};
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_cache::{CachePolicy, ExpertCache, Mrs};
use hybrimoe_hw::{AffineCostModel, Platform};
use hybrimoe_model::{ExpertId, ExpertKey, LayerId, ModelConfig};
use hybrimoe_sched::{oracle_makespan, ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use hybrimoe_trace::TraceGenerator;

const SEED: u64 = 0xAB1A;

fn main() {
    let panel = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match panel.as_str() {
        "alpha" => alpha_sweep(),
        "topp" => topp_sweep(),
        "discount" => discount_sweep(),
        "steal" => steal_ablation(),
        "oracle" => oracle_gap(),
        "quant" => quant_tradeoff(),
        "batch" => batched_decode(),
        "all" => {
            alpha_sweep();
            topp_sweep();
            discount_sweep();
            steal_ablation();
            oracle_gap();
            quant_tradeoff();
            batched_decode();
        }
        other => {
            eprintln!(
                "unknown panel {other:?}; expected alpha|topp|discount|steal|oracle|quant|batch|all"
            );
            std::process::exit(2);
        }
    }
}

/// Hit rate of an MRS variant on a pure cache replay.
fn mrs_hit_rate(model: &ModelConfig, policy: Box<dyn CachePolicy>, ratio: f64) -> f64 {
    let trace = TraceGenerator::new(model.clone(), SEED).decode_trace(160);
    let mut cache = ExpertCache::new(model.cache_capacity_for_ratio(ratio), policy);
    let warm = trace.steps.len() / 4;
    for (i, step) in trace.steps.iter().enumerate() {
        if i == warm {
            cache.reset_stats();
        }
        for rec in &step.layers {
            cache.note_routing(&rec.routing, model.activated_experts);
            for (expert, _) in rec.routing.activated() {
                let key = ExpertKey::new(rec.routing.layer(), expert);
                if !cache.lookup(key) {
                    cache.insert(key);
                }
            }
        }
    }
    cache.stats().hit_rate()
}

fn alpha_sweep() {
    println!("== ablation: MRS averaging coefficient α (DeepSeek, 30% cache) ==\n");
    let model = ModelConfig::deepseek();
    let mut table = Table::new(vec!["alpha".into(), "hit rate".into()]);
    for alpha in [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let rate = mrs_hit_rate(&model, Box::new(Mrs::new(alpha)), 0.3);
        table.push_row(vec![format!("{alpha:.2}"), percent(rate)]);
    }
    println!("{table}");
    println!("takeaway: a broad plateau around α≈0.2-0.5; the library default is 0.3\n");
}

fn topp_sweep() {
    println!("== ablation: MRS top-P cutoff (DeepSeek K=6, 30% cache) ==\n");
    let model = ModelConfig::deepseek();
    let mut table = Table::new(vec!["p".into(), "hit rate".into(), "note".into()]);
    for (p, note) in [
        (3u16, "K/2"),
        (6, "K"),
        (12, "2K (paper)"),
        (24, "4K"),
        (64, "all experts"),
    ] {
        let rate = mrs_hit_rate(&model, Box::new(Mrs::with_top_p(0.3, p)), 0.3);
        table.push_row(vec![p.to_string(), percent(rate), note.to_owned()]);
    }
    println!("{table}");
    println!("takeaway: accumulating only the top scores matters; p=2K is near the peak\n");
}

fn discount_sweep() {
    println!("== ablation: prefetcher choice, refill disabled (Mixtral decode, 25% cache) ==\n");
    // Cache refill shares the background PCIe queue with prefetching and
    // masks its effect; disabling it isolates the prefetcher. Mixtral is
    // the model where prefetch matters most: its 110 MB experts take two
    // decode layers to move, so only lookahead can hide the latency.
    use hybrimoe::PrefetcherKind;
    let model = ModelConfig::mixtral();
    let trace = TraceGenerator::new(model.clone(), SEED).decode_trace(24);
    let mut table = Table::new(vec!["prefetcher".into(), "TBT".into(), "hit rate".into()]);
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::NextLayerTopK,
        PrefetcherKind::ImpactDriven,
    ] {
        let config = EngineConfig {
            prefetcher: kind,
            refill_on_miss: false,
            ..EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25)
        };
        let m = Engine::new(config).run(&trace);
        table.push_row(vec![
            format!("{kind:?}"),
            format!("{:.1}ms", m.mean_step_latency().as_millis_f64()),
            percent(m.hit_rate()),
        ]);
    }
    println!("{table}");
    println!("takeaway: lookahead prefetching converts misses that refill alone cannot\n");
}

fn steal_ablation() {
    println!("== ablation: CPU work-stealing of cached experts ==\n");
    // Two regimes. (1) The paper's Fig. 5 regime, where CPU and GPU
    // per-expert times are comparable: stealing shortens the fully-cached
    // layer. (2) The calibrated A6000 platform, where the GPU is an order
    // of magnitude faster per expert: the steal rule (correctly) never
    // fires. Both are printed; the second is an honest negative result.
    let mut table = Table::new(vec!["regime".into(), "with steal".into(), "without".into()]);

    let unit = hybrimoe_hw::UnitCostModel::paper_fig5();
    let unit_tasks: Vec<ExpertTask> = (0..4)
        .map(|i| ExpertTask::cached(ExpertId(i), 1 + i as u32))
        .collect();
    let ctx = ScheduleContext::for_test(LayerId(0), &unit_tasks, &unit);
    table.push_row(vec![
        "comparable CPU/GPU (Fig. 5 units)".into(),
        format!(
            "{}",
            HybridScheduler::new().schedule(&ctx).predicted_makespan
        ),
        format!(
            "{}",
            HybridScheduler::without_cpu_steal()
                .schedule(&ctx)
                .predicted_makespan
        ),
    ]);

    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let model = ModelConfig::deepseek();
    let a6000_tasks: Vec<ExpertTask> = (0..8)
        .map(|i| ExpertTask::cached(ExpertId(i), 12 + 4 * i as u32))
        .collect();
    let ctx = ScheduleContext::new(
        LayerId(0),
        64,
        &a6000_tasks,
        model.routed_profile(),
        None,
        &cost,
    );
    table.push_row(vec![
        "calibrated A6000 (GPU much faster)".into(),
        format!(
            "{}",
            HybridScheduler::new().schedule(&ctx).predicted_makespan
        ),
        format!(
            "{}",
            HybridScheduler::without_cpu_steal()
                .schedule(&ctx)
                .predicted_makespan
        ),
    ]);
    println!("{table}");
    println!("takeaway: stealing only pays when per-expert CPU and GPU times are");
    println!("comparable; the greedy applies it exactly then and stays silent otherwise\n");
}

fn oracle_gap() {
    println!("== ablation: hybrid scheduler vs exhaustive oracle ==\n");
    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let model = ModelConfig::deepseek();
    let mut total_ratio = 0.0;
    let mut optimal = 0usize;
    let mut n_cases = 0usize;
    let mut worst: f64 = 1.0;
    let mut seed = SEED;
    for _ in 0..300 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let n = 2 + (seed >> 41) as usize % 6;
        let tasks: Vec<ExpertTask> = (0..n)
            .map(|i| {
                let s = seed.wrapping_add(i as u64 * 0x9E37_79B9);
                ExpertTask {
                    expert: ExpertId(i as u16),
                    load: 1 + (s >> 13) as u32 % 24,
                    cached: (s >> 7).is_multiple_of(2),
                }
            })
            .collect();
        let tokens = tasks.iter().map(|t| t.load).max().unwrap_or(1);
        let ctx = ScheduleContext::new(
            LayerId(0),
            tokens,
            &tasks,
            model.routed_profile(),
            None,
            &cost,
        );
        let hybrid = HybridScheduler::new().schedule(&ctx).predicted_makespan;
        let Some(opt) = oracle_makespan(&ctx) else {
            continue;
        };
        let ratio = hybrid.as_nanos() as f64 / opt.as_nanos().max(1) as f64;
        total_ratio += ratio;
        worst = worst.max(ratio);
        if hybrid == opt {
            optimal += 1;
        }
        n_cases += 1;
    }
    println!("random DeepSeek-like layers: {n_cases} instances");
    println!(
        "  exactly optimal: {} ({:.1}%)",
        optimal,
        optimal as f64 / n_cases as f64 * 100.0
    );
    println!("  mean makespan ratio: {:.4}", total_ratio / n_cases as f64);
    println!("  worst ratio: {worst:.4}");
    println!("\ntakeaway: the paper's greedy priority rules are near-optimal in practice,");
    println!("justifying 'predefined scheduling rules can achieve efficient balancing'\n");
}

/// Q4 vs Q8 expert copies: transfer time against measured quantization
/// error (the HOBBIT-style mixed-precision trade, paper ref.\ 7).
fn quant_tradeoff() {
    use hybrimoe_hw::{CostModel, ExpertProfile};
    use hybrimoe_kernels::{Q8Matrix, QuantizedMatrix};

    println!("== ablation: Q4 vs Q8 expert transfers (DeepSeek expert) ==\n");
    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let shape = ModelConfig::deepseek().routed_shape;
    let q4_bytes = shape.packed_bytes();
    let q8_bytes = shape.params() * 9 / 8; // 9 bits/weight

    // Measure real quantization error on a probe matrix.
    let (rows, cols) = (64usize, 256usize);
    let probe: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761) >> 8;
            (h as f32 / (1u32 << 24) as f32 - 0.5) * 0.2
        })
        .collect();
    let rmse = |back: Vec<f32>| -> f64 {
        (probe
            .iter()
            .zip(back.iter())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / probe.len() as f64)
            .sqrt()
    };
    let q4 = QuantizedMatrix::quantize(&probe, rows, cols).expect("aligned");
    let q8 = Q8Matrix::quantize(&probe, rows, cols).expect("aligned");

    let mut table = Table::new(vec![
        "format".into(),
        "expert MB".into(),
        "PCIe transfer".into(),
        "weight RMSE".into(),
    ]);
    for (name, bytes, err) in [
        ("Q4_0", q4_bytes, rmse(q4.dequantize())),
        ("Q8_0", q8_bytes, rmse(q8.dequantize())),
    ] {
        let t = cost.transfer(&ExpertProfile::new(bytes, shape.flops_per_token()));
        table.push_row(vec![
            name.to_owned(),
            format!("{:.1}", bytes as f64 / 1e6),
            format!("{t}"),
            format!("{err:.2e}"),
        ]);
    }
    println!("{table}");
    println!("takeaway: Q4 transfers are 1.8x cheaper per expert at ~8x the weight");
    println!("error — the lever mixed-precision offloading systems (HOBBIT) exploit\n");
}

/// Batched decode: HybriMoE vs kTransformers as concurrent sequences grow.
fn batched_decode() {
    println!("== ablation: batched decode serving (DeepSeek, 25% cache) ==\n");
    let model = ModelConfig::deepseek();
    let mut table = Table::new(vec![
        "batch".into(),
        "KTrans ms/step".into(),
        "HybriMoE ms/step".into(),
        "speedup".into(),
    ]);
    for batch in [1u32, 2, 4, 8] {
        let trace = TraceGenerator::new(model.clone(), SEED).decode_trace_batched(16, batch);
        let k = Engine::new(EngineConfig::preset(
            Framework::KTransformers,
            model.clone(),
            0.25,
        ))
        .run(&trace);
        let h = Engine::new(EngineConfig::preset(
            Framework::HybriMoe,
            model.clone(),
            0.25,
        ))
        .run(&trace);
        table.push_row(vec![
            batch.to_string(),
            format!("{:.1}", k.mean_step_latency().as_millis_f64()),
            format!("{:.1}", h.mean_step_latency().as_millis_f64()),
            format!(
                "{:.2}x",
                k.total.as_nanos() as f64 / h.total.as_nanos() as f64
            ),
        ]);
    }
    println!("{table}");
    println!("takeaway: batching multiplies per-expert loads, moving decode toward the");
    println!("prefill regime where transfers amortize — the hybrid advantage persists\n");
}
