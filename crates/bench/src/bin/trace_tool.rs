//! Trace utility: generate, save, inspect and compare activation traces.
//!
//! ```text
//! trace_tool gen <model> <decode|prefill> <n> <seed> [out.json]
//! trace_tool stats <trace.json>
//! ```
//!
//! Saved traces replay bit-for-bit through the engine, making experiment
//! results portable across machines.

use std::fs;

use hybrimoe_model::ModelConfig;
use hybrimoe_trace::{stats, ActivationTrace, TraceGenerator};

fn model_by_name(name: &str) -> Option<ModelConfig> {
    match name {
        "mixtral" => Some(ModelConfig::mixtral()),
        "deepseek" => Some(ModelConfig::deepseek()),
        "qwen2" => Some(ModelConfig::qwen2()),
        "tiny" => Some(ModelConfig::tiny_test()),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  trace_tool gen <mixtral|deepseek|qwen2|tiny> <decode|prefill> <n> <seed> [out.json]"
    );
    eprintln!("  trace_tool stats <trace.json>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            if args.len() < 5 {
                usage();
            }
            let Some(model) = model_by_name(&args[1]) else {
                usage()
            };
            let n: usize = args[3].parse().unwrap_or_else(|_| usage());
            let seed: u64 = args[4].parse().unwrap_or_else(|_| usage());
            let generator = TraceGenerator::new(model, seed);
            let trace = match args[2].as_str() {
                "decode" => generator.decode_trace(n),
                "prefill" => generator.prefill_trace(n as u32),
                _ => usage(),
            };
            let json = trace.to_json().expect("serializable");
            match args.get(5) {
                Some(path) => {
                    fs::write(path, &json).expect("writable output path");
                    println!(
                        "wrote {} steps ({} bytes) to {path}",
                        trace.steps.len(),
                        json.len()
                    );
                }
                None => println!("{json}"),
            }
        }
        Some("stats") => {
            if args.len() < 2 {
                usage();
            }
            let json = fs::read_to_string(&args[1]).expect("readable trace file");
            let trace = ActivationTrace::from_json(&json).expect("valid trace JSON");
            print_stats(&trace);
        }
        _ => usage(),
    }
}

fn print_stats(trace: &ActivationTrace) {
    println!("model: {}", trace.model_name);
    println!("seed:  {:#x}", trace.seed);
    println!("steps: {}", trace.steps.len());
    println!("layer records: {}", trace.layer_records());
    let cdf = stats::activation_cdf(trace);
    if !cdf.is_empty() {
        let idx = (cdf.len() / 5).max(1) - 1;
        println!("top-20% expert activation share: {:.1}%", cdf[idx] * 100.0);
    }
    println!(
        "inter-layer similarity (Jaccard): {:.3}",
        stats::interlayer_similarity(trace)
    );
    println!("temporal reuse: {:.3}", stats::temporal_reuse(trace));
    let reuse = stats::reuse_probability_by_rank(trace);
    if !reuse.is_empty() {
        println!("top-rank reuse probability: {:.3}", reuse[0]);
    }
}
