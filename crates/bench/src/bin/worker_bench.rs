//! Distributed-worker benchmark: sweeps worker count × pipelining × batch
//! size over the remote executor (expert batches dispatched to in-thread
//! workers behind real loopback sockets and the full framed protocol) and
//! reports the measured tokens/s against the same executor running fully
//! local on identical inputs and plans.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin worker_bench                         # table + JSON
//! cargo run -p hybrimoe_bench --release --bin worker_bench -- --json              # JSON only
//! cargo run -p hybrimoe_bench --release --bin worker_bench -- --json --out x.json # also write a file
//! ```
//!
//! `BENCH_worker.json` at the repo root is the committed snapshot; the
//! `bench_check` CI gate diffs a fresh run's remote-vs-local *speedups*
//! against it per (workers, pipelining) series, and additionally checks
//! that pipelined multi-worker throughput holds at least parity with a
//! single worker at batch ≥ [`WORKER_GATE_BATCH`] — absolute tokens/s are
//! machine-dependent, the within-run ratios are not.

use hybrimoe_bench::{
    median_f64, real_bench_model, worker_sweep, WorkerRow, SEED, WORKER_COUNTS, WORKER_GATE_BATCH,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let out_path = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("--out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });

    let model = real_bench_model();
    if !json_only {
        println!(
            "Distributed expert workers — {} (hidden {}, inter {}), scalar kernels, \
             1 thread/side, seed {SEED:#x}\n",
            model.name,
            model.routed_shape.hidden(),
            model.routed_shape.inter()
        );
        println!(
            "{:>8} {:>10} {:>6} {:>8} {:>14} {:>14} {:>9}",
            "workers", "pipelined", "batch", "experts", "remote t/s", "local t/s", "speedup"
        );
    }

    let rows: Vec<WorkerRow> = worker_sweep(SEED);

    if !json_only {
        for r in &rows {
            println!(
                "{:>8} {:>10} {:>6} {:>8} {:>14.1} {:>14.1} {:>8.2}x",
                r.workers,
                r.pipelined,
                r.batch,
                r.experts,
                r.remote_tok_s,
                r.local_tok_s,
                r.speedup
            );
        }
        // Gate summary: each multi-worker pipelined series' median
        // throughput ratio over the single-worker pipelined series at the
        // gated batch sizes (the scaling check `bench_check` enforces).
        let single = |batch: usize, experts: u16| {
            rows.iter()
                .find(|r| r.workers == 1 && r.pipelined && r.batch == batch && r.experts == experts)
                .map(|r| r.remote_tok_s)
        };
        println!();
        for workers in WORKER_COUNTS.iter().filter(|w| **w > 1) {
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|r| r.workers == *workers && r.pipelined && r.batch >= WORKER_GATE_BATCH)
                .filter_map(|r| single(r.batch, r.experts).map(|s| r.remote_tok_s / s))
                .collect();
            println!(
                "{workers} workers: median pipelined throughput vs 1 worker at batch >= \
                 {WORKER_GATE_BATCH} across {} point(s): {:.2}x",
                ratios.len(),
                median_f64(&ratios)
            );
        }
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        if !json_only {
            println!("wrote {path}");
        }
    }
    println!("{json}");
}
