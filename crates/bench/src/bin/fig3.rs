//! Fig. 3 — the paper's six motivation measurements. Run all panels or a
//! single one: `cargo run -p hybrimoe-bench --release --bin fig3 -- b`.
//!
//! (a) activation-frequency CDF: neuron sparsity is concentrated, MoE
//!     experts are near-uniform;
//! (b) reuse probability decays with score rank (the MRS signal);
//! (c) per-expert token loads of one prefill forward are highly uneven;
//! (d) no existing method wins in every scenario;
//! (e) CPU vs GPU time over expert count at fixed load: the first CPU
//!     expert pays a cold penalty, later ones overlap;
//! (f) CPU time grows linearly with workload, GPU time stays nearly flat.

use hybrimoe::report::Table;
use hybrimoe::Framework;
use hybrimoe_bench::{millis, run_decode, run_prefill, SEED};
use hybrimoe_hw::{AffineCostModel, CostModel, Platform};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::{neuron, stats, TraceGenerator};

fn main() {
    let panel = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match panel.as_str() {
        "a" => panel_a(),
        "b" => panel_b(),
        "c" => panel_c(),
        "d" => panel_d(),
        "e" => panel_e(),
        "f" => panel_f(),
        "all" => {
            panel_a();
            panel_b();
            panel_c();
            panel_d();
            panel_e();
            panel_f();
        }
        other => {
            eprintln!("unknown panel {other:?}; expected a-f or all");
            std::process::exit(2);
        }
    }
}

fn panel_a() {
    println!("== Fig. 3(a): cumulative activation frequency (CDF) ==\n");
    let neuron_cdf = neuron::neuron_activation_cdf(512, 1.05, 100_000, SEED);
    let mixtral =
        stats::activation_cdf(&TraceGenerator::new(ModelConfig::mixtral(), SEED).decode_trace(256));
    let deepseek = stats::activation_cdf(
        &TraceGenerator::new(ModelConfig::deepseek(), SEED).decode_trace(256),
    );
    let mut table = Table::new(vec![
        "population %".into(),
        "OPT neurons".into(),
        "Mixtral experts".into(),
        "DeepSeek experts".into(),
    ]);
    for pct in [10, 20, 40, 60, 80, 100] {
        let at = |cdf: &[f64]| {
            let idx = (cdf.len() * pct / 100).max(1) - 1;
            format!("{:.1}%", cdf[idx] * 100.0)
        };
        table.push_row(vec![
            format!("{pct}%"),
            at(&neuron_cdf),
            at(&mixtral),
            at(&deepseek),
        ]);
    }
    println!("{table}");
    println!("shape: neurons concentrate early; expert curves hug the diagonal\n");
}

fn panel_b() {
    println!("== Fig. 3(b): reuse probability by expert score rank (DeepSeek) ==\n");
    let trace = TraceGenerator::new(ModelConfig::deepseek(), SEED).decode_trace(256);
    let reuse = stats::reuse_probability_by_rank(&trace);
    let mut table = Table::new(vec!["score rank".into(), "reuse probability".into()]);
    for rank in [0usize, 1, 2, 4, 8, 16, 32, 63] {
        table.push_row(vec![
            rank.to_string(),
            format!("{:.3}", reuse.get(rank).copied().unwrap_or(0.0)),
        ]);
    }
    println!("{table}");
    println!("shape: ~0.3 at the top ranks, flattening below ~0.1 (paper Fig. 3(b))\n");
}

fn panel_c() {
    println!("== Fig. 3(c): expert workload distribution, DeepSeek 128-token prefill ==\n");
    let trace = TraceGenerator::new(ModelConfig::deepseek(), SEED).prefill_trace(128);
    let loads = stats::workload_distribution(&trace, 0, 0).expect("layer 0 exists");
    let max = loads.iter().copied().max().unwrap_or(1).max(1);
    let mut sorted = loads.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    println!("top-8 loads: {:?}", &sorted[..8]);
    println!(
        "zero-load experts: {}",
        loads.iter().filter(|l| **l == 0).count()
    );
    println!("Gini coefficient: {:.3}", stats::load_gini(&loads));
    for (i, l) in loads.iter().enumerate().take(16) {
        println!("E{i:02} {:5} |{}", l, "#".repeat((l * 40 / max) as usize));
    }
    println!("(first 16 of 64 experts shown)\n");
}

fn panel_d() {
    println!("== Fig. 3(d): no existing method wins everywhere (25% cache) ==\n");
    let mut table = Table::new(vec![
        "scenario".into(),
        "llama.cpp".into(),
        "AdapMoE".into(),
        "KTransformers".into(),
    ]);
    let frameworks = [
        Framework::LlamaCpp,
        Framework::AdapMoe,
        Framework::KTransformers,
    ];
    let qwen = ModelConfig::qwen2();
    let mixtral = ModelConfig::mixtral();
    let mut row = vec!["Qwen2 prefill 128 (per layer)".to_owned()];
    for f in frameworks {
        let m = run_prefill(f, &qwen, 0.25, 128, SEED);
        row.push(millis(m.total / qwen.layers as u64));
    }
    table.push_row(row);
    let mut row = vec!["Mixtral prefill 128 (per layer)".to_owned()];
    for f in frameworks {
        let m = run_prefill(f, &mixtral, 0.25, 128, SEED);
        row.push(millis(m.total / mixtral.layers as u64));
    }
    table.push_row(row);
    let mut row = vec!["Mixtral decode 10 (per layer)".to_owned()];
    for f in frameworks {
        let m = run_decode(f, &mixtral, 0.25, 10, SEED);
        row.push(millis(m.total / (10 * mixtral.layers as u64)));
    }
    table.push_row(row);
    println!("{table}");
    println!("shape: the winner differs per scenario — motivation for dynamic scheduling\n");
}

fn panel_e() {
    println!("== Fig. 3(e): CPU vs GPU time for 1..6 experts at fixed load ==\n");
    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let expert = ModelConfig::deepseek().routed_profile();
    let load = 8;
    let mut table = Table::new(vec![
        "#experts".into(),
        "CPU total".into(),
        "GPU total".into(),
    ]);
    for n in 1..=6u32 {
        let cpu: hybrimoe_hw::SimDuration =
            (0..n).map(|i| cost.cpu_compute(&expert, load, i > 0)).sum();
        let gpu: hybrimoe_hw::SimDuration = (0..n).map(|_| cost.gpu_compute(&expert, load)).sum();
        table.push_row(vec![n.to_string(), millis(cpu), millis(gpu)]);
    }
    println!("{table}");
    println!("shape: the first CPU expert is slower (cold), later ones amortize\n");
}

fn panel_f() {
    println!("== Fig. 3(f): CPU and GPU time across workload sizes ==\n");
    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let expert = ModelConfig::deepseek().routed_profile();
    let mut table = Table::new(vec!["tokens".into(), "CPU".into(), "GPU".into()]);
    for tokens in [1u32, 8, 32, 128, 256, 512, 1024] {
        table.push_row(vec![
            tokens.to_string(),
            millis(cost.cpu_compute(&expert, tokens, true)),
            millis(cost.gpu_compute(&expert, tokens)),
        ]);
    }
    println!("{table}");
    println!("shape: CPU grows linearly with workload; GPU stays nearly flat\n");
}
