//! Fig. 1 — execution timelines of three scheduling scenarios for one MoE
//! layer with six activated experts: (a) pure on-demand loading, (b) an
//! unbalanced fixed CPU-GPU mapping, (c) the balanced hybrid schedule.
//!
//! GPU expert compute time is constant, CPU time scales with load, and the
//! balanced schedule finishes first — the motivating observation of the
//! paper.

use hybrimoe_hw::{Gantt, PlanExecutor, UnitCostModel};
use hybrimoe_model::{ExpertId, LayerId};
use hybrimoe_sched::baselines::{FixedMappingScheduler, GpuOnlyScheduler};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};

fn main() {
    println!("== Fig. 1: on-demand vs unbalanced vs balanced timelines ==\n");
    // Six experts, two cached, uneven loads.
    let tasks = vec![
        ExpertTask::cached(ExpertId(0), 4),
        ExpertTask::cached(ExpertId(1), 2),
        ExpertTask::uncached(ExpertId(2), 4),
        ExpertTask::uncached(ExpertId(3), 2),
        ExpertTask::uncached(ExpertId(4), 1),
        ExpertTask::uncached(ExpertId(5), 1),
    ];
    let cost = UnitCostModel::paper_fig5();
    let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);

    let scenarios: [(&str, Box<dyn Scheduler>); 3] = [
        (
            "(a) on-demand loading (GPU only)",
            Box::new(GpuOnlyScheduler::new()),
        ),
        (
            "(b) unbalanced hybrid (fixed mapping)",
            Box::new(FixedMappingScheduler::new()),
        ),
        (
            "(c) balanced hybrid (HybriMoE)",
            Box::new(HybridScheduler::new()),
        ),
    ];
    let mut results = Vec::new();
    for (title, scheduler) in scenarios {
        let plan = scheduler.schedule(&ctx);
        plan.validate(&tasks).expect("valid plan");
        let executed = PlanExecutor::new()
            .execute(plan.to_ops(&ctx))
            .expect("acyclic");
        println!(
            "-- {title}: makespan {} units --",
            executed.makespan.as_micros_f64()
        );
        println!("{}\n", Gantt::render(&executed.timelines, 56));
        results.push(executed.makespan);
    }
    assert!(
        results[2] <= results[1] && results[2] <= results[0],
        "the balanced schedule must finish first"
    );
    println!(
        "balanced hybrid is {:.2}x faster than on-demand and {:.2}x faster than unbalanced",
        results[0].as_nanos() as f64 / results[2].as_nanos() as f64,
        results[1].as_nanos() as f64 / results[2].as_nanos() as f64,
    );
}
