//! The serving front-end as a standalone process.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin server -- --addr 127.0.0.1:8080
//! ```
//!
//! Serves `POST /v1/generate` (streamed tokens), `GET /metrics`,
//! `GET /healthz` and `POST /admin/drain`; see
//! `hybrimoe::serve::server` for the protocol. On SIGTERM or SIGINT the
//! process drains gracefully — admission closes, every accepted request
//! streams to completion — then prints the final metrics snapshot as JSON
//! and exits 0.
//!
//! Options (all have serving defaults):
//!
//! | flag | meaning |
//! |---|---|
//! | `--addr HOST:PORT` | bind address (default `127.0.0.1:8080`) |
//! | `--model NAME` | `tiny` (default) or `deepseek` |
//! | `--cache-ratio R` | GPU cache ratio (default 0.5) |
//! | `--max-batch N` | continuous-batch bound (default 16) |
//! | `--queue-depth N` | admission queue bound (default 1024) |
//! | `--shed-watermark-ms N` | load-shed queue-delay watermark (default off) |
//! | `--min-step-us N` | engine-step pacing floor (default 5000) |
//! | `--seed N` | trace seed (default 0) |

// The bench *library* forbids unsafe; this binary is a separate crate
// target and needs exactly one unsafe line to register POSIX signal
// handlers without adding a libc dependency.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use hybrimoe::serve::server::{Server, ServerConfig};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_model::ModelConfig;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: flip the flag, let main drain.
    SHUTDOWN.store(true, Ordering::Release);
}

/// Registers `on_signal` for SIGTERM and SIGINT via the libc `signal`
/// symbol every Unix process already links.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("server: cannot parse {name} value {raw:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = match flag(&args, "--model").as_deref() {
        None | Some("tiny") => ModelConfig::tiny_test(),
        Some("deepseek") => ModelConfig::deepseek(),
        Some(other) => {
            eprintln!("server: unknown model {other:?} (expected tiny or deepseek)");
            std::process::exit(2);
        }
    };
    let cache_ratio: f64 = parsed(&args, "--cache-ratio", 0.5);
    let seed: u64 = parsed(&args, "--seed", 0);

    let mut config = ServerConfig::new(EngineConfig::preset(
        Framework::HybriMoe,
        model,
        cache_ratio,
    ));
    config.addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".to_owned());
    config.max_batch = parsed(&args, "--max-batch", config.max_batch);
    config.queue_depth = parsed(&args, "--queue-depth", config.queue_depth);
    config.seed = seed;
    let shed_ms: u64 = parsed(&args, "--shed-watermark-ms", 0);
    config.shed_watermark = (shed_ms > 0).then(|| Duration::from_millis(shed_ms));
    let min_step_us: u64 = parsed(&args, "--min-step-us", 5000);
    config.min_step = (min_step_us > 0).then(|| Duration::from_micros(min_step_us));

    install_signal_handlers();
    let handle = Server::start(config).unwrap_or_else(|e| {
        eprintln!("server: cannot bind: {e}");
        std::process::exit(2);
    });
    println!("server: listening on {}", handle.addr());
    println!("server: POST /v1/generate | GET /metrics | GET /healthz | POST /admin/drain");

    while !SHUTDOWN.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("server: signal received, draining");
    let metrics = handle.shutdown();
    println!(
        "{}",
        serde_json::to_string_pretty(&metrics).expect("metrics serialize")
    );
}
