//! Fig. 5 — the paper's worked scheduling example.
//!
//! CPU queue holds uncached experts A:1, B:1, C:3; the GPU cache holds
//! D:4 and E:1; transfers take 3 time units, GPU tasks 1 unit, CPU tasks
//! `load` units. The hybrid schedule loads C to the GPU instead of
//! computing it on the CPU and finishes in 4 units, against 5+ for the
//! fixed mapping.

use hybrimoe_hw::{Gantt, PlanExecutor, UnitCostModel};
use hybrimoe_model::{ExpertId, LayerId};
use hybrimoe_sched::baselines::FixedMappingScheduler;
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};

fn main() {
    println!("== Fig. 5: worked hybrid scheduling example ==\n");
    let tasks = vec![
        ExpertTask::uncached(ExpertId(0), 1), // A
        ExpertTask::uncached(ExpertId(1), 1), // B
        ExpertTask::uncached(ExpertId(2), 3), // C
        ExpertTask::cached(ExpertId(3), 4),   // D
        ExpertTask::cached(ExpertId(4), 1),   // E
    ];
    let names = ["A", "B", "C", "D", "E"];
    let cost = UnitCostModel::paper_fig5();
    let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);

    for (title, plan) in [
        (
            "HybriMoE hybrid schedule",
            HybridScheduler::new().schedule(&ctx),
        ),
        (
            "Fixed mapping (kTransformers-style)",
            FixedMappingScheduler::new().schedule(&ctx),
        ),
    ] {
        plan.validate(&tasks).expect("plan must be valid");
        let executed = PlanExecutor::new()
            .execute(plan.to_ops(&ctx))
            .expect("acyclic");
        println!("-- {title} --");
        println!(
            "  CPU order:  {:?}",
            plan.cpu_experts()
                .map(|e| names[e.0 as usize])
                .collect::<Vec<_>>()
        );
        println!(
            "  GPU order:  {:?}",
            plan.gpu_experts()
                .map(|e| names[e.0 as usize])
                .collect::<Vec<_>>()
        );
        println!(
            "  transfers:  {:?}",
            plan.transferred_experts()
                .map(|e| names[e.0 as usize])
                .collect::<Vec<_>>()
        );
        println!(
            "  makespan:   {} time units (predicted {})",
            executed.makespan.as_micros_f64(),
            plan.predicted_makespan.as_micros_f64()
        );
        println!("{}\n", Gantt::render(&executed.timelines, 48));
    }
    println!("paper: the hybrid schedule finishes in 4 units by loading C to the GPU");
}
