//! Fig. 9 — cache hit rate of MRS vs LRU across cached expert percentages
//! (30–70%) for the three models.
//!
//! Pure cache simulation: per decode iteration and layer, the policy sees
//! the routing scores, the activated experts are looked up, and misses are
//! inserted on demand (evicting per policy). No scheduling or prefetching
//! is involved, isolating the replacement policy exactly as the paper's
//! discussion section does.
//!
//! Paper shape: MRS above LRU everywhere, by ~6–8 points at 25–30% cache,
//! with the gap narrowing as capacity grows (e.g. Mixtral 83.3% vs 80.6%
//! at 75%).

use hybrimoe::report::{percent, Table};
use hybrimoe_cache::{CachePolicy, ExpertCache, Lru, Mrs};
use hybrimoe_model::{ExpertKey, ModelConfig};
use hybrimoe_trace::{ActivationTrace, TraceGenerator};

const ITERATIONS: usize = 256;
const SEED: u64 = 0xF19_2025;

/// Replays a decode trace against a cache and returns the steady-state hit
/// rate (the first quarter of iterations warms the cache).
fn hit_rate(
    trace: &ActivationTrace,
    model: &ModelConfig,
    policy: Box<dyn CachePolicy>,
    ratio: f64,
) -> f64 {
    let capacity = model.cache_capacity_for_ratio(ratio);
    let mut cache = ExpertCache::new(capacity, policy);
    let warmup = trace.steps.len() / 4;
    for (i, step) in trace.steps.iter().enumerate() {
        if i == warmup {
            cache.reset_stats();
        }
        for rec in &step.layers {
            cache.note_routing(&rec.routing, model.activated_experts);
            let layer = rec.routing.layer();
            for (expert, _) in rec.routing.activated() {
                let key = ExpertKey::new(layer, expert);
                if !cache.lookup(key) {
                    cache.insert(key);
                }
            }
        }
    }
    cache.stats().hit_rate()
}

fn main() {
    println!(
        "== Fig. 9: MRS vs LRU cache hit rate, {ITERATIONS} decode iterations, seed {SEED:#x} ==\n"
    );
    let ratios = [0.30, 0.40, 0.50, 0.60, 0.70];
    let mut table = Table::new(
        std::iter::once("model / policy".to_owned())
            .chain(ratios.iter().map(|r| format!("{:.0}%", r * 100.0)))
            .collect(),
    );
    for model in ModelConfig::paper_models() {
        let trace = TraceGenerator::new(model.clone(), SEED).decode_trace(ITERATIONS);
        for mrs in [false, true] {
            let mut row = vec![format!(
                "{} {}",
                model.name,
                if mrs { "MRS" } else { "LRU" }
            )];
            for ratio in ratios {
                let policy: Box<dyn CachePolicy> = if mrs {
                    Box::new(Mrs::new(0.3))
                } else {
                    Box::new(Lru::new())
                };
                row.push(percent(hit_rate(&trace, &model, policy, ratio)));
            }
            table.push_row(row);
        }
    }
    println!("{table}");
    println!("paper @30%: Mixtral 36.2/30.2, DeepSeek 52.7/47.7, Qwen2 52.8/45.0 (MRS/LRU)");
    println!("paper @70-75%: gap narrows (Mixtral 83.3 vs 80.6)");
}
