//! Predictive-prefetch benchmark: sweeps prefetcher kind, lookahead depth
//! and chunked-prefill size on the HybriMoE preset at the tight memory
//! point (cache ratio 0.25) and reports cache hit ratio, throughput and
//! prefetch efficiency per configuration.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin prefetch_bench                         # table + JSON
//! cargo run -p hybrimoe_bench --release --bin prefetch_bench -- --json              # JSON only
//! cargo run -p hybrimoe_bench --release --bin prefetch_bench -- --json --out x.json # also write a file
//! ```
//!
//! The JSON is an array with one object per configuration;
//! `BENCH_prefetch.json` at the repo root is the committed snapshot the
//! `bench_check` CI gate diffs fresh runs against.

use hybrimoe_bench::{prefetch_sweep, PrefetchRow, ServeLoad, PREFETCH_RATE, PREFETCH_RATIO, SEED};
use hybrimoe_model::ModelConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let out_path = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("--out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let model = ModelConfig::deepseek();
    let load = ServeLoad::default();

    if !json_only {
        println!(
            "Predictive prefetch — {} | rate {PREFETCH_RATE}/s @ ratio {PREFETCH_RATIO}, \
             {} requests, {} prompt + {} output tokens, max batch {}, seed {SEED:#x}\n",
            model.name, load.requests, load.prompt_tokens, load.decode_tokens, load.max_batch
        );
    }

    let rows: Vec<PrefetchRow> = prefetch_sweep(&model, load, SEED);

    if !json_only {
        println!(
            "{:<16} {:>4} {:>5} {:>6} {:>7} | {:>6} {:>9} {:>8} | {:>7} {:>7} {:>7} {:>6}",
            "prefetcher",
            "look",
            "pipe",
            "chunk",
            "prompt",
            "hit%",
            "tok/s",
            "tpot99",
            "issued",
            "landed",
            "wasted",
            "acc%"
        );
        for r in &rows {
            println!(
                "{:<16} {:>4} {:>5} {:>6} {:>7} | {:>6.1} {:>9.2} {:>8.2} | {:>7} {:>7} {:>7} \
                 {:>6}",
                r.prefetcher,
                r.lookahead,
                r.pipelined,
                r.chunked_prefill,
                r.prompt_tokens,
                r.cache_hit_ratio * 100.0,
                r.output_tokens_per_sec,
                r.tpot_p99_ms,
                r.prefetch_issued,
                r.prefetch_landed,
                r.prefetch_wasted,
                r.predictor_accuracy
                    .map_or("-".to_owned(), |a| format!("{:.1}", a * 100.0)),
            );
        }
        // The headline the tentpole claims: the learned pipeline vs the
        // paper's oracle-decay impact-driven baseline at ratio 0.25.
        let find = |name: &str, pipelined: bool| {
            rows.iter()
                .find(|r| {
                    r.prefetcher == name && r.pipelined == pipelined && r.chunked_prefill == 0
                })
                .expect("sweep covers this point")
        };
        let impact = find("impact-driven", false);
        let predictive = find("predictive", true);
        println!(
            "\nimpact-driven: hit {:.1}%, {:.2} tok/s | predictive+pipelined: hit {:.1}%, \
             {:.2} tok/s ({:+.1}% hit, {:+.1}% throughput)\n",
            impact.cache_hit_ratio * 100.0,
            impact.output_tokens_per_sec,
            predictive.cache_hit_ratio * 100.0,
            predictive.output_tokens_per_sec,
            (predictive.cache_hit_ratio - impact.cache_hit_ratio) * 100.0,
            (predictive.output_tokens_per_sec / impact.output_tokens_per_sec - 1.0) * 100.0,
        );
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        if !json_only {
            println!("wrote {path}");
        }
    }
    println!("{json}");
}
