//! Continuous-batching serving benchmark: sweeps arrival rate × cache
//! ratio × GPU count × framework and reports per-request latency
//! percentiles and aggregate throughput.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin serve_bench                        # table + JSON
//! cargo run -p hybrimoe_bench --release --bin serve_bench -- --json             # JSON only
//! cargo run -p hybrimoe_bench --release --bin serve_bench -- --json --out x.json # also write a file
//! ```
//!
//! The JSON (last line block of stdout, and the `--out` file when given) is
//! an array with one object per experiment, suitable for cross-PR trend
//! tracking; `BENCH_serve.json` at the repo root is the committed snapshot
//! that the `bench_check` CI gate diffs fresh runs against.

use hybrimoe::report::serve_table;
use hybrimoe::serve::ServeSummary;
use hybrimoe::Framework;
use hybrimoe_bench::{same_rate, serve_sweep, ServeLoad, ServeRow, SEED, SERVE_ARRIVAL_RATES};
use hybrimoe_model::ModelConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let out_path = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("--out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let model = ModelConfig::deepseek();
    let load = ServeLoad::default();

    if !json_only {
        println!(
            "Continuous-batching serving — {} | {} requests, {} prompt + {} output tokens, \
             max batch {}, poisson arrivals, seed {SEED:#x}\n",
            model.name, load.requests, load.prompt_tokens, load.decode_tokens, load.max_batch
        );
    }

    let rows: Vec<ServeRow> = serve_sweep(&model, load, SEED);

    if !json_only {
        let table_rows: Vec<(String, ServeSummary)> = rows
            .iter()
            .map(|r| (r.framework.clone(), r.summary.clone()))
            .collect();
        println!("{}", serve_table(&table_rows));
        let pick = |f: Framework, rate: f64, gpus: usize| {
            rows.iter()
                .find(|r| {
                    r.framework == f.to_string()
                        && r.summary.cache_ratio == 0.25
                        && r.summary.num_gpus == gpus
                        && same_rate(r.summary.arrival_rate_per_sec, rate)
                })
                .expect("sweep covers this point")
        };
        for rate in SERVE_ARRIVAL_RATES {
            let h = pick(Framework::HybriMoe, rate, 1);
            let k = pick(Framework::KTransformers, rate, 1);
            println!(
                "rate {rate:>4.1}/s @ ratio 0.25, 1 GPU: HybriMoE {:.1} tok/s vs \
                 KTransformers {:.1} tok/s",
                h.summary.output_tokens_per_sec, k.summary.output_tokens_per_sec
            );
        }
        for rate in SERVE_ARRIVAL_RATES {
            let g1 = pick(Framework::HybriMoe, rate, 1);
            let g2 = pick(Framework::HybriMoe, rate, 2);
            let g4 = pick(Framework::HybriMoe, rate, 4);
            println!(
                "rate {rate:>4.1}/s @ ratio 0.25, HybriMoE sharding: 1 GPU {:.1} | 2 GPUs {:.1} \
                 | 4 GPUs {:.1} tok/s",
                g1.summary.output_tokens_per_sec,
                g2.summary.output_tokens_per_sec,
                g4.summary.output_tokens_per_sec
            );
        }
        println!();
    }

    let json = serde_json::to_string_pretty(&rows).expect("summaries serialize");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        if !json_only {
            println!("wrote {path}");
        }
    }
    println!("{json}");
}
