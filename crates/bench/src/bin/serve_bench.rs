//! Continuous-batching serving benchmark: sweeps arrival rate × cache
//! ratio × framework and reports per-request latency percentiles and
//! aggregate throughput.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin serve_bench                        # table + JSON
//! cargo run -p hybrimoe_bench --release --bin serve_bench -- --json             # JSON only
//! cargo run -p hybrimoe_bench --release --bin serve_bench -- --json --out x.json # also write a file
//! ```
//!
//! The JSON (last line block of stdout, and the `--out` file when given) is
//! an array with one object per experiment, suitable for cross-PR trend
//! tracking; `BENCH_serve.json` at the repo root is the committed snapshot.

use hybrimoe::report::serve_table;
use hybrimoe::serve::ServeSummary;
use hybrimoe::Framework;
use hybrimoe_bench::{run_serve, ServeLoad, SEED};
use hybrimoe_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Arrival rates of the sweep, in requests per second.
const ARRIVAL_RATES: [f64; 3] = [2.0, 5.0, 10.0];

/// Cache ratios of the sweep (the paper's tight and middle points).
const CACHE_RATIOS: [f64; 2] = [0.25, 0.50];

/// Frameworks compared.
const FRAMEWORKS: [Framework; 2] = [Framework::KTransformers, Framework::HybriMoe];

/// One row of the sweep output.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeRow {
    framework: String,
    summary: ServeSummary,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let out_path = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("--out requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    let model = ModelConfig::deepseek();
    let load = ServeLoad::default();

    if !json_only {
        println!(
            "Continuous-batching serving — {} | {} requests, {} prompt + {} output tokens, \
             max batch {}, poisson arrivals, seed {SEED:#x}\n",
            model.name, load.requests, load.prompt_tokens, load.decode_tokens, load.max_batch
        );
    }

    let mut rows: Vec<ServeRow> = Vec::new();
    for rate in ARRIVAL_RATES {
        for ratio in CACHE_RATIOS {
            for framework in FRAMEWORKS {
                let report = run_serve(framework, &model, ratio, rate, load, SEED);
                rows.push(ServeRow {
                    framework: framework.to_string(),
                    summary: report.summary(),
                });
            }
        }
    }

    if !json_only {
        let table_rows: Vec<(String, ServeSummary)> = rows
            .iter()
            .map(|r| (r.framework.clone(), r.summary.clone()))
            .collect();
        println!("{}", serve_table(&table_rows));
        for rate in ARRIVAL_RATES {
            let pick = |f: Framework| {
                rows.iter()
                    .find(|r| {
                        r.framework == f.to_string()
                            && r.summary.cache_ratio == 0.25
                            && (r.summary.arrival_rate_per_sec - rate).abs() < 1e-9
                    })
                    .expect("sweep covers this point")
            };
            let h = pick(Framework::HybriMoe);
            let k = pick(Framework::KTransformers);
            println!(
                "rate {rate:>4.1}/s @ ratio 0.25: HybriMoE {:.1} tok/s vs KTransformers {:.1} tok/s",
                h.summary.output_tokens_per_sec, k.summary.output_tokens_per_sec
            );
        }
        println!();
    }

    let json = serde_json::to_string_pretty(&rows).expect("summaries serialize");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        if !json_only {
            println!("wrote {path}");
        }
    }
    println!("{json}");
}
