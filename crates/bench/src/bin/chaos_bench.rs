//! Seeded chaos soak for the serving stack: injected engine panics,
//! latency spikes, request deadlines, client cancels, hangups and slow
//! readers — asserting that every admitted request terminates and no
//! batch slot leaks.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin chaos_bench
//! cargo run -p hybrimoe_bench --release --bin chaos_bench -- --seed 7
//! cargo run -p hybrimoe_bench --release --bin chaos_bench -- --json --out BENCH_chaos.json
//! ```
//!
//! The summary is a deterministic function of the seed (the sim-clock
//! soak counters are bit-reproducible; the real-server phase reports
//! invariant booleans), so CI runs the binary twice and diffs the two
//! JSON files byte for byte. `bench_check --chaos-fresh` then gates the
//! invariants themselves.
//!
//! | flag | meaning |
//! |---|---|
//! | `--seed N` | chaos seed (default the repo-wide bench seed) |
//! | `--json` | print the summary as JSON instead of text |
//! | `--out PATH` | also write the JSON summary to a file |

use hybrimoe_bench::{run_chaos_bench, SEED};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = match flag(&args, "--seed") {
        None => SEED,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("chaos_bench: cannot parse --seed value {raw:?}");
            std::process::exit(2);
        }),
    };

    // The injected engine panics print their payloads by default; silence
    // exactly those so the report stays readable (containment is the
    // point) while real panics still get their backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected engine fault"));
        if !injected {
            default_hook(info);
        }
    }));
    let summary = run_chaos_bench(seed);

    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    if let Some(path) = flag(&args, "--out") {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("chaos_bench: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("chaos_bench: wrote {path}");
    }
    if args.iter().any(|a| a == "--json") {
        println!("{json}");
    } else {
        println!(
            "soak: {} requests -> {} completed, {} timed out, {} cancelled, {} failed \
             ({} panic(s) contained over {} steps, {} leaked slot(s))",
            summary.soak_requests,
            summary.soak_completed,
            summary.soak_timed_out,
            summary.soak_cancelled,
            summary.soak_failed,
            summary.soak_panics_contained,
            summary.soak_steps,
            summary.soak_leaked_slots
        );
        println!(
            "server: {} requests -> all terminated {}, books balance {}, healthz consistent {}",
            summary.server_requests,
            summary.server_all_terminated,
            summary.server_accounted,
            summary.server_healthz_consistent
        );
    }

    let soak_accounted = summary.soak_completed
        + summary.soak_timed_out
        + summary.soak_cancelled
        + summary.soak_failed
        == summary.soak_requests;
    let ok = soak_accounted
        && summary.soak_leaked_slots == 0
        && summary.server_all_terminated
        && summary.server_accounted
        && summary.server_healthz_consistent;
    if !ok {
        eprintln!("chaos_bench: INVARIANT VIOLATION (see summary above)");
        std::process::exit(1);
    }
}
