//! Load generator for the serving front-end: opens many concurrent
//! streamed `POST /v1/generate` requests and reports client-observed SLO
//! percentiles.
//!
//! ```text
//! cargo run -p hybrimoe_bench --release --bin load_gen                    # in-process server
//! cargo run -p hybrimoe_bench --release --bin load_gen -- --addr 127.0.0.1:8080
//! cargo run -p hybrimoe_bench --release --bin load_gen -- --json --out BENCH_server.json
//! ```
//!
//! With no `--addr`, a tiny-model server is started in-process so the run
//! is self-contained (that is how `BENCH_server.json` is produced). The
//! defaults drive 1000 concurrent streamed requests.
//!
//! | flag | meaning |
//! |---|---|
//! | `--addr HOST:PORT` | target an already-running server |
//! | `--requests N` | total requests (default 1000) |
//! | `--concurrency N` | client connections in flight (default 1000) |
//! | `--prompt-tokens N` | prompt length (default 16) |
//! | `--decode-tokens N` | output length (default 8) |
//! | `--max-batch N` | in-process server batch bound (default 16) |
//! | `--queue-depth N` | in-process server queue bound (default 1024) |
//! | `--min-step-us N` | in-process server pacing floor (default 5000) |
//! | `--json` | print the summary as JSON instead of text |
//! | `--out PATH` | also write the JSON summary to a file |

use std::net::SocketAddr;

use hybrimoe_bench::{run_server_bench, ServerLoad};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("load_gen: cannot parse {name} value {raw:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: Option<SocketAddr> = flag(&args, "--addr").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("load_gen: cannot parse --addr value {raw:?}");
            std::process::exit(2);
        })
    });
    let defaults = ServerLoad::default();
    let load = ServerLoad {
        requests: parsed(&args, "--requests", defaults.requests),
        concurrency: parsed(&args, "--concurrency", defaults.concurrency),
        prompt_tokens: parsed(&args, "--prompt-tokens", defaults.prompt_tokens),
        decode_tokens: parsed(&args, "--decode-tokens", defaults.decode_tokens),
        max_batch: parsed(&args, "--max-batch", defaults.max_batch),
        queue_depth: parsed(&args, "--queue-depth", defaults.queue_depth),
        min_step_us: parsed(&args, "--min-step-us", defaults.min_step_us),
    };

    match addr {
        Some(a) => eprintln!(
            "load_gen: {} requests, {} concurrent, against {a}",
            load.requests, load.concurrency
        ),
        None => eprintln!(
            "load_gen: {} requests, {} concurrent, in-process tiny-model server",
            load.requests, load.concurrency
        ),
    }
    let summary = run_server_bench(addr, load);

    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    if let Some(path) = flag(&args, "--out") {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("load_gen: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("load_gen: wrote {path}");
    }
    if args.iter().any(|a| a == "--json") {
        println!("{json}");
    } else {
        println!(
            "completed {}/{} (rejected {}, failed {}) in {:.0}ms",
            summary.completed,
            summary.requests,
            summary.rejected,
            summary.failed,
            summary.elapsed_ms
        );
        println!(
            "throughput: {:.1} tok/s, {:.1} req/s",
            summary.output_tokens_per_sec, summary.requests_per_sec
        );
        println!(
            "ttft p50/p99: {:.1}/{:.1} ms   latency p50/p99: {:.1}/{:.1} ms   \
             queue wait p50/p99: {:.1}/{:.1} ms",
            summary.ttft_p50_ms,
            summary.ttft_p99_ms,
            summary.latency_p50_ms,
            summary.latency_p99_ms,
            summary.queue_wait_p50_ms,
            summary.queue_wait_p99_ms
        );
    }
    if summary.completed < summary.requests {
        eprintln!(
            "load_gen: {} request(s) did not complete",
            summary.requests - summary.completed
        );
        std::process::exit(1);
    }
}
