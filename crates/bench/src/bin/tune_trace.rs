//! Calibration sweep for the trace generator (developer tool, not a paper
//! figure): prints reuse probability, hit rates and CDF skew across
//! parameter combinations so the defaults can be pinned to the paper's
//! measured statistics.

use hybrimoe_cache::{CachePolicy, ExpertCache, Lru, Mrs};
use hybrimoe_model::{ExpertKey, ModelConfig};
use hybrimoe_trace::{stats, ActivationTrace, TraceConfig, TraceGenerator};

fn hit_rate(
    trace: &ActivationTrace,
    model: &ModelConfig,
    policy: Box<dyn CachePolicy>,
    ratio: f64,
) -> f64 {
    let mut cache = ExpertCache::new(model.cache_capacity_for_ratio(ratio), policy);
    let warmup = trace.steps.len() / 4;
    for (i, step) in trace.steps.iter().enumerate() {
        if i == warmup {
            cache.reset_stats();
        }
        for rec in &step.layers {
            cache.note_routing(&rec.routing, model.activated_experts);
            let layer = rec.routing.layer();
            for (expert, _) in rec.routing.activated() {
                let key = ExpertKey::new(layer, expert);
                if !cache.lookup(key) {
                    cache.insert(key);
                }
            }
        }
    }
    cache.stats().hit_rate()
}

fn main() {
    let model = ModelConfig::deepseek();
    println!("DeepSeek targets: top-rank reuse ~0.30, LRU@30% ~47.7, MRS@30% ~52.7");
    for rho_t in [0.25, 0.3, 0.35, 0.4] {
        for bias in [0.5, 0.6, 0.7] {
            let config = TraceConfig {
                temporal_correlation: rho_t,
                expert_bias: bias,
                ..TraceConfig::default()
            };
            let trace = TraceGenerator::with_config(model.clone(), 0xF19, config).decode_trace(192);
            let reuse = stats::reuse_probability_by_rank(&trace);
            let top = reuse[0];
            let tail = reuse[reuse.len() / 2];
            let cdf = stats::activation_cdf(&trace);
            let top20 = cdf[cdf.len() / 5 - 1];
            let lru = hit_rate(&trace, &model, Box::new(Lru::new()), 0.30);
            let mrs = hit_rate(&trace, &model, Box::new(Mrs::new(0.3)), 0.30);
            println!(
                "rho_t={rho_t:.2} bias={bias:.1} | reuse top={top:.2} mid={tail:.2} | cdf top20%={top20:.2} | LRU@30={:.1}% MRS@30={:.1}%",
                lru * 100.0,
                mrs * 100.0
            );
        }
    }
}
