//! The GPU-resident expert cache.

use std::collections::BTreeSet;

use hybrimoe_model::{ExpertId, ExpertKey, LayerId, LayerRouting};

use crate::{CachePolicy, CacheStats};

/// What happened on an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The expert was already resident; nothing changed.
    AlreadyResident,
    /// Inserted into free space.
    Inserted,
    /// Inserted after evicting the contained expert.
    InsertedEvicting(ExpertKey),
    /// The insertion was refused (capacity zero, or every resident expert is
    /// pinned/protected).
    Refused,
}

impl InsertOutcome {
    /// Whether the expert ended up resident.
    pub fn is_resident(&self) -> bool {
        !matches!(self, InsertOutcome::Refused)
    }
}

/// Tracks which routed experts are resident in GPU memory.
///
/// Capacity is counted in experts, matching the paper's "GPU expert cache
/// ratio" axis (all routed experts of a model are the same size; shared
/// experts are pinned and live outside this budget).
///
/// The cache is policy-agnostic: all replacement decisions are delegated to
/// the [`CachePolicy`] it owns. The logical clock passed to the policy
/// advances on every lookup/insert, giving recency-based policies a total
/// order of events.
///
/// # Example
///
/// ```
/// use hybrimoe_cache::{ExpertCache, Mrs};
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
///
/// let mut cache = ExpertCache::new(8, Box::new(Mrs::new(0.3)));
/// let k = ExpertKey::new(LayerId(1), ExpertId(4));
/// assert!(!cache.lookup(k)); // miss
/// cache.insert(k);
/// assert!(cache.lookup(k)); // hit
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct ExpertCache {
    capacity: usize,
    resident: BTreeSet<ExpertKey>,
    pinned: BTreeSet<ExpertKey>,
    policy: Box<dyn CachePolicy>,
    clock: u64,
    stats: CacheStats,
}

impl ExpertCache {
    /// Creates a cache holding up to `capacity` routed experts.
    pub fn new(capacity: usize, policy: Box<dyn CachePolicy>) -> Self {
        ExpertCache {
            capacity,
            resident: BTreeSet::new(),
            pinned: BTreeSet::new(),
            policy,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The policy's name (for reports).
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Capacity in experts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident experts.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether no experts are resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether the cache is at capacity.
    pub fn is_full(&self) -> bool {
        self.resident.len() >= self.capacity
    }

    /// Free expert slots.
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.resident.len())
    }

    /// Whether `key` is resident, without recording a lookup.
    pub fn contains(&self, key: ExpertKey) -> bool {
        self.resident.contains(&key)
    }

    /// Looks up `key`, recording a hit or miss and notifying the policy.
    pub fn lookup(&mut self, key: ExpertKey) -> bool {
        self.clock += 1;
        if self.resident.contains(&key) {
            self.stats.hits += 1;
            self.policy.on_access(key, self.clock);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Forwards one layer's routing to the policy (score-aware policies
    /// update their estimates here).
    pub fn note_routing(&mut self, routing: &LayerRouting, activated_k: u16) {
        self.policy.on_routing(routing, activated_k);
    }

    /// Inserts `key`, evicting a policy-chosen victim if the cache is full.
    /// Equivalent to [`insert_protected`](Self::insert_protected) with no
    /// protected set.
    pub fn insert(&mut self, key: ExpertKey) -> InsertOutcome {
        self.insert_protected(key, &[])
    }

    /// Inserts `key`; when eviction is needed, experts in `protect` (e.g.
    /// the ones still queued for computation in the current layer) are not
    /// eligible victims.
    pub fn insert_protected(&mut self, key: ExpertKey, protect: &[ExpertKey]) -> InsertOutcome {
        if self.resident.contains(&key) {
            return InsertOutcome::AlreadyResident;
        }
        if self.capacity == 0 {
            return InsertOutcome::Refused;
        }
        self.clock += 1;
        if self.resident.len() < self.capacity {
            self.resident.insert(key);
            self.stats.insertions += 1;
            self.policy.on_insert(key, self.clock);
            return InsertOutcome::Inserted;
        }
        // Candidates: resident, unpinned, unprotected — deterministic order
        // from the BTreeSet.
        let candidates: Vec<ExpertKey> = self
            .resident
            .iter()
            .copied()
            .filter(|k| !self.pinned.contains(k) && !protect.contains(k))
            .collect();
        let Some(victim) = self.policy.choose_victim(&candidates) else {
            return InsertOutcome::Refused;
        };
        debug_assert!(self.resident.contains(&victim));
        self.resident.remove(&victim);
        self.policy.on_evict(victim);
        self.stats.evictions += 1;
        self.resident.insert(key);
        self.stats.insertions += 1;
        self.policy.on_insert(key, self.clock);
        InsertOutcome::InsertedEvicting(victim)
    }

    /// Inserts `key` only if there is free space (the prefetch path: the
    /// paper prefetches into idle capacity rather than forcing evictions).
    pub fn insert_if_free(&mut self, key: ExpertKey) -> InsertOutcome {
        if self.resident.contains(&key) {
            return InsertOutcome::AlreadyResident;
        }
        if self.is_full() {
            return InsertOutcome::Refused;
        }
        self.clock += 1;
        self.resident.insert(key);
        self.stats.insertions += 1;
        self.stats.prefetch_insertions += 1;
        self.policy.on_insert(key, self.clock);
        InsertOutcome::Inserted
    }

    /// Pins `key` so it can never be chosen as an eviction victim. Pinning
    /// does not insert; combine with [`insert`](Self::insert).
    pub fn pin(&mut self, key: ExpertKey) {
        self.pinned.insert(key);
    }

    /// Removes the pin from `key`.
    pub fn unpin(&mut self, key: ExpertKey) {
        self.pinned.remove(&key);
    }

    /// Whether `key` is pinned.
    pub fn is_pinned(&self, key: ExpertKey) -> bool {
        self.pinned.contains(&key)
    }

    /// The resident experts of `layer`, ascending by expert id.
    pub fn cached_in_layer(&self, layer: LayerId) -> Vec<ExpertId> {
        self.resident
            .range(ExpertKey::new(layer, ExpertId(0))..=ExpertKey::new(layer, ExpertId(u16::MAX)))
            .map(|k| k.expert)
            .collect()
    }

    /// All resident experts, ascending.
    pub fn resident_keys(&self) -> impl Iterator<Item = ExpertKey> + '_ {
        self.resident.iter().copied()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (e.g. after a warmup phase) without touching
    /// residency or policy state.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lfu, Lru, Mrs};
    use hybrimoe_model::RouterOutput;

    fn key(l: u16, e: u16) -> ExpertKey {
        ExpertKey::new(LayerId(l), ExpertId(e))
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = ExpertCache::new(2, Box::new(Lru::new()));
        assert_eq!(c.insert(key(0, 0)), InsertOutcome::Inserted);
        assert_eq!(c.insert(key(0, 0)), InsertOutcome::AlreadyResident);
        assert!(c.lookup(key(0, 0)));
        assert!(!c.lookup(key(0, 1)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_when_full() {
        let mut c = ExpertCache::new(2, Box::new(Lru::new()));
        c.insert(key(0, 0));
        c.insert(key(0, 1));
        c.lookup(key(0, 0)); // refresh
        let outcome = c.insert(key(0, 2));
        assert_eq!(outcome, InsertOutcome::InsertedEvicting(key(0, 1)));
        assert_eq!(c.len(), 2);
        assert!(c.contains(key(0, 0)));
        assert!(c.contains(key(0, 2)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn pinned_experts_never_evicted() {
        let mut c = ExpertCache::new(2, Box::new(Lru::new()));
        c.insert(key(0, 0));
        c.pin(key(0, 0));
        c.insert(key(0, 1));
        let outcome = c.insert(key(0, 2));
        assert_eq!(outcome, InsertOutcome::InsertedEvicting(key(0, 1)));
        assert!(c.contains(key(0, 0)));
        assert!(c.is_pinned(key(0, 0)));
        c.unpin(key(0, 0));
        assert!(!c.is_pinned(key(0, 0)));
    }

    #[test]
    fn all_pinned_refuses_insert() {
        let mut c = ExpertCache::new(1, Box::new(Lru::new()));
        c.insert(key(0, 0));
        c.pin(key(0, 0));
        assert_eq!(c.insert(key(0, 1)), InsertOutcome::Refused);
        assert!(!InsertOutcome::Refused.is_resident());
    }

    #[test]
    fn protected_experts_not_victims() {
        let mut c = ExpertCache::new(2, Box::new(Lru::new()));
        c.insert(key(0, 0));
        c.insert(key(0, 1));
        // key(0,0) is LRU but protected; the victim must be key(0,1).
        let outcome = c.insert_protected(key(0, 2), &[key(0, 0)]);
        assert_eq!(outcome, InsertOutcome::InsertedEvicting(key(0, 1)));
    }

    #[test]
    fn zero_capacity_refuses() {
        let mut c = ExpertCache::new(0, Box::new(Lru::new()));
        assert_eq!(c.insert(key(0, 0)), InsertOutcome::Refused);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_if_free_never_evicts() {
        let mut c = ExpertCache::new(1, Box::new(Lru::new()));
        assert_eq!(c.insert_if_free(key(0, 0)), InsertOutcome::Inserted);
        assert_eq!(c.insert_if_free(key(0, 1)), InsertOutcome::Refused);
        assert_eq!(c.insert_if_free(key(0, 0)), InsertOutcome::AlreadyResident);
        assert_eq!(c.stats().prefetch_insertions, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn cached_in_layer_filters() {
        let mut c = ExpertCache::new(8, Box::new(Lfu::new()));
        c.insert(key(0, 3));
        c.insert(key(1, 1));
        c.insert(key(1, 7));
        c.insert(key(2, 0));
        assert_eq!(
            c.cached_in_layer(LayerId(1)),
            vec![ExpertId(1), ExpertId(7)]
        );
        assert_eq!(c.cached_in_layer(LayerId(3)), Vec::<ExpertId>::new());
    }

    #[test]
    fn mrs_cache_keeps_high_score_experts() {
        let mut c = ExpertCache::new(2, Box::new(Mrs::new(0.5)));
        let routing = LayerRouting::from_tokens(
            LayerId(0),
            4,
            &[RouterOutput::route(&[6.0, 5.0, 0.0, 0.0], 2)],
        );
        c.note_routing(&routing, 2);
        c.insert(key(0, 0));
        c.insert(key(0, 3));
        // Expert 3 has no score mass; inserting expert 1 must evict it.
        let outcome = c.insert(key(0, 1));
        assert_eq!(outcome, InsertOutcome::InsertedEvicting(key(0, 3)));
    }

    #[test]
    fn reset_stats_clears_counts_only() {
        let mut c = ExpertCache::new(2, Box::new(Lru::new()));
        c.insert(key(0, 0));
        c.lookup(key(0, 0));
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.contains(key(0, 0)));
    }
}
