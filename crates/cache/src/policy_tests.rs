//! Focused cross-policy unit tests, complementing the per-policy test
//! modules and the `cache_invariants` integration suite:
//!
//! * the MRS exponential average is checked against its closed form,
//! * LRU/LFU eviction *order* is checked by draining a populated policy,
//! * the capacity bound is checked under a mixed workload for all three
//!   policies behind a real [`ExpertCache`].

use hybrimoe_model::{ExpertId, ExpertKey, LayerId, LayerRouting};

use crate::{CachePolicy, ExpertCache, Lfu, Lru, Mrs};

fn key(l: u16, e: u16) -> ExpertKey {
    ExpertKey::new(LayerId(l), ExpertId(e))
}

/// A single-token routing whose mean scores are exactly `scores`.
fn routing(layer: u16, scores: &[f32]) -> LayerRouting {
    LayerRouting::from_parts(LayerId(layer), 1, vec![0; scores.len()], scores.to_vec())
}

#[test]
fn mrs_update_matches_closed_form() {
    // With every expert inside the top-P window, S_n is exactly the
    // exponential average  S_n = α·s_n + (1−α)·S_{n−1}  of the per-round
    // mean scores.
    let alpha = 0.3f64;
    let rounds = [
        [0.50f32, 0.30, 0.15, 0.05],
        [0.10, 0.60, 0.20, 0.10],
        [0.25, 0.25, 0.25, 0.25],
        [0.70, 0.10, 0.10, 0.10],
    ];
    let mut mrs = Mrs::with_top_p(alpha, 4);
    let mut expected = [0f64; 4];
    for round in &rounds {
        mrs.on_routing(&routing(0, round), 2);
        for (e, s) in expected.iter_mut().zip(round.iter()) {
            *e = alpha * f64::from(*s) + (1.0 - alpha) * *e;
        }
        for (i, e) in expected.iter().enumerate() {
            let got = mrs.score(key(0, i as u16));
            assert!(
                (got - e).abs() < 1e-9,
                "expert {i}: got {got}, closed form {e}"
            );
        }
    }
}

#[test]
fn mrs_decay_is_geometric_outside_top_p() {
    // Once an expert drops out of the top-P window its estimate decays by
    // exactly (1−α) per round.
    let alpha = 0.4f64;
    // The policy widens the routing's f32 scores, so expectations must start
    // from the widened value.
    let s = f64::from(0.9f32);
    let mut mrs = Mrs::with_top_p(alpha, 1);
    mrs.on_routing(&routing(0, &[0.9, 0.1]), 1);
    let s0 = mrs.score(key(0, 0));
    assert!((s0 - alpha * s).abs() < 1e-9);
    for round in 1..=5 {
        mrs.on_routing(&routing(0, &[0.0, 0.9]), 1);
        let expect = alpha * s * (1.0 - alpha).powi(round);
        let got = mrs.score(key(0, 0));
        assert!(
            (got - expect).abs() < 1e-9,
            "round {round}: got {got}, expected {expect}"
        );
    }
}

/// Drains `policy` by repeatedly evicting its chosen victim, returning the
/// eviction order.
fn drain(policy: &mut dyn CachePolicy, mut resident: Vec<ExpertKey>) -> Vec<ExpertKey> {
    let mut order = Vec::new();
    while !resident.is_empty() {
        resident.sort();
        let victim = policy.choose_victim(&resident).expect("candidates remain");
        policy.on_evict(victim);
        resident.retain(|&k| k != victim);
        order.push(victim);
    }
    order
}

#[test]
fn lru_evicts_in_last_access_order() {
    let mut lru = Lru::new();
    let keys = [key(0, 0), key(0, 1), key(0, 2), key(0, 3)];
    for (i, &k) in keys.iter().enumerate() {
        lru.on_insert(k, i as u64);
    }
    // Reorder recency: 2 is now the most recent, then 0; 1 and 3 keep their
    // insertion times.
    lru.on_access(keys[0], 10);
    lru.on_access(keys[2], 11);
    let order = drain(&mut lru, keys.to_vec());
    assert_eq!(order, vec![keys[1], keys[3], keys[0], keys[2]]);
}

#[test]
fn lfu_evicts_in_frequency_then_recency_order() {
    let mut lfu = Lfu::new();
    let keys = [key(0, 0), key(0, 1), key(0, 2)];
    let mut now = 0u64;
    for &k in &keys {
        lfu.on_insert(k, now);
        now += 1;
    }
    // Access counts: key0 ×3, key1 ×1, key2 ×1 (key2 accessed later).
    for _ in 0..3 {
        lfu.on_access(keys[0], now);
        now += 1;
    }
    lfu.on_access(keys[1], now);
    now += 1;
    lfu.on_access(keys[2], now);
    // key1 and key2 tie on count; key1's last access is older, so it goes
    // first. key0 is the most frequent and goes last.
    let order = drain(&mut lfu, keys.to_vec());
    assert_eq!(order, vec![keys[1], keys[2], keys[0]]);
}

/// A deterministic pseudo-random workload stressing one policy behind a
/// real cache, asserting the capacity bound on every step.
fn capacity_never_exceeded(policy: Box<dyn CachePolicy>) {
    let capacity = 6;
    let mut cache = ExpertCache::new(capacity, policy);
    let mut state = 0x5EED_u64;
    for step in 0..2000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let l = ((state >> 33) % 4) as u16;
        let e = ((state >> 16) % 8) as u16;
        let k = key(l, e);
        match state % 5 {
            0 => {
                cache.lookup(k);
            }
            1 | 2 => {
                assert!(cache.insert(k).is_resident());
            }
            3 => {
                cache.note_routing(&routing(l, &[0.4, 0.3, 0.2, 0.1, 0.0, 0.0, 0.0, 0.0]), 2);
            }
            _ => {
                cache.insert_if_free(k);
            }
        }
        assert!(
            cache.len() <= capacity,
            "step {step}: {} resident with capacity {capacity}",
            cache.len()
        );
    }
    // The workload touches more distinct experts than fit, so the cache
    // must have filled up and stayed full.
    assert_eq!(cache.len(), capacity);
    assert!(cache.stats().evictions > 0, "workload never evicted");
}

#[test]
fn lru_capacity_never_exceeded() {
    capacity_never_exceeded(Box::new(Lru::new()));
}

#[test]
fn lfu_capacity_never_exceeded() {
    capacity_never_exceeded(Box::new(Lfu::new()));
}

#[test]
fn mrs_capacity_never_exceeded() {
    capacity_never_exceeded(Box::new(Mrs::new(0.3)));
}
