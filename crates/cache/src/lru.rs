//! Least-recently-used replacement.

use std::collections::HashMap;

use hybrimoe_model::{ExpertKey, LayerRouting};

use crate::CachePolicy;

/// Classic LRU: evicts the resident expert whose last access is oldest.
///
/// This is the baseline of the paper's Fig. 9 comparison and the policy
/// AdapMoE uses (Table I).
///
/// # Example
///
/// ```
/// use hybrimoe_cache::{CachePolicy, Lru};
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
///
/// let mut lru = Lru::new();
/// let a = ExpertKey::new(LayerId(0), ExpertId(0));
/// let b = ExpertKey::new(LayerId(0), ExpertId(1));
/// lru.on_insert(a, 1);
/// lru.on_insert(b, 2);
/// lru.on_access(a, 3);
/// assert_eq!(lru.choose_victim(&[a, b]), Some(b));
/// ```
#[derive(Debug, Default)]
pub struct Lru {
    last_access: HashMap<ExpertKey, u64>,
}

impl Lru {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Lru::default()
    }
}

impl CachePolicy for Lru {
    fn name(&self) -> &str {
        "LRU"
    }

    fn on_routing(&mut self, _routing: &LayerRouting, _activated_k: u16) {}

    fn on_access(&mut self, key: ExpertKey, now: u64) {
        self.last_access.insert(key, now);
    }

    fn on_insert(&mut self, key: ExpertKey, now: u64) {
        self.last_access.insert(key, now);
    }

    fn on_evict(&mut self, key: ExpertKey) {
        self.last_access.remove(&key);
    }

    fn choose_victim(&mut self, candidates: &[ExpertKey]) -> Option<ExpertKey> {
        candidates
            .iter()
            .copied()
            .min_by_key(|k| (self.last_access.get(k).copied().unwrap_or(0), *k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_model::{ExpertId, LayerId};

    fn key(l: u16, e: u16) -> ExpertKey {
        ExpertKey::new(LayerId(l), ExpertId(e))
    }

    #[test]
    fn evicts_oldest_access() {
        let mut lru = Lru::new();
        lru.on_insert(key(0, 0), 1);
        lru.on_insert(key(0, 1), 2);
        lru.on_insert(key(0, 2), 3);
        lru.on_access(key(0, 0), 4);
        assert_eq!(
            lru.choose_victim(&[key(0, 0), key(0, 1), key(0, 2)]),
            Some(key(0, 1))
        );
    }

    #[test]
    fn unknown_candidates_treated_as_oldest() {
        let mut lru = Lru::new();
        lru.on_insert(key(0, 0), 5);
        assert_eq!(lru.choose_victim(&[key(0, 0), key(0, 9)]), Some(key(0, 9)));
    }

    #[test]
    fn empty_candidates_give_none() {
        let mut lru = Lru::new();
        assert_eq!(lru.choose_victim(&[]), None);
    }

    #[test]
    fn eviction_forgets_state() {
        let mut lru = Lru::new();
        lru.on_insert(key(0, 0), 10);
        lru.on_evict(key(0, 0));
        // Re-inserted later with a fresh timestamp; old one must not linger.
        lru.on_insert(key(0, 1), 1);
        assert_eq!(lru.choose_victim(&[key(0, 0), key(0, 1)]), Some(key(0, 0)));
    }

    #[test]
    fn ties_break_by_key_order() {
        let mut lru = Lru::new();
        lru.on_insert(key(0, 3), 1);
        lru.on_insert(key(0, 1), 1);
        assert_eq!(lru.choose_victim(&[key(0, 1), key(0, 3)]), Some(key(0, 1)));
    }
}
