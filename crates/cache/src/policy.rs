//! The cache replacement policy interface.

use std::fmt;

use hybrimoe_model::{ExpertKey, LayerRouting};

/// A cache replacement policy for routed experts.
///
/// The policy sees three event streams from the [`ExpertCache`](crate::ExpertCache):
///
/// 1. [`on_routing`](CachePolicy::on_routing) — once per layer per
///    iteration, with the layer's full routing (loads and softmax score
///    masses). Score-aware policies update their estimates here; the paper's
///    insight is that *scores of non-activated experts* are predictive too
///    (§III, Opportunity 1).
/// 2. [`on_access`](CachePolicy::on_access) / [`on_insert`](CachePolicy::on_insert)
///    / [`on_evict`](CachePolicy::on_evict) — residency changes.
/// 3. [`choose_victim`](CachePolicy::choose_victim) — pick which of the
///    eviction candidates to drop.
///
/// Implementations must be deterministic: given the same event sequence and
/// candidate order they must pick the same victim.
pub trait CachePolicy: fmt::Debug + Send {
    /// A short stable name for reports (e.g. `"LRU"`, `"MRS"`).
    fn name(&self) -> &str;

    /// Observes one layer's routing for the current iteration. `activated_k`
    /// is the model's number of activated experts per token (the K used to
    /// derive the top-P cutoff of MRS).
    fn on_routing(&mut self, routing: &LayerRouting, activated_k: u16);

    /// Observes a cache hit on `key` at logical time `now`.
    fn on_access(&mut self, key: ExpertKey, now: u64);

    /// Observes `key` becoming resident at logical time `now`.
    fn on_insert(&mut self, key: ExpertKey, now: u64);

    /// Observes `key` being evicted.
    fn on_evict(&mut self, key: ExpertKey);

    /// Picks the victim among `candidates` (unpinned resident experts, in
    /// deterministic ascending key order). Returns `None` only if
    /// `candidates` is empty.
    fn choose_victim(&mut self, candidates: &[ExpertKey]) -> Option<ExpertKey>;
}
