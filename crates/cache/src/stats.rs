//! Cache statistics.

use serde::{Deserialize, Serialize};

/// Counters of cache behaviour over a run.
///
/// # Example
///
/// ```
/// use hybrimoe_cache::CacheStats;
///
/// let mut s = CacheStats::default();
/// s.hits = 3;
/// s.misses = 1;
/// assert_eq!(s.hit_rate(), 0.75);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the expert resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Experts inserted (on-demand transfers and prefetches).
    pub insertions: u64,
    /// Experts evicted to make room.
    pub evictions: u64,
    /// Insertions attributed to prefetching.
    pub prefetch_insertions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0.0` when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.prefetch_insertions += other.prefetch_insertions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            prefetch_insertions: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 4);
        assert_eq!(a.insertions, 6);
        assert_eq!(a.evictions, 8);
        assert_eq!(a.prefetch_insertions, 10);
    }
}
