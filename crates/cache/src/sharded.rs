//! Per-GPU cache shards behind one facade.
//!
//! A multi-GPU deployment gives every GPU its own expert cache: residency,
//! eviction and score estimates are device-local, and the static
//! expert→shard affinity map ([`shard_of`](hybrimoe_model::shard_of))
//! guarantees an expert is only ever resident on one GPU. A
//! [`ShardedExpertCache`] owns one [`ExpertCache`] per shard and routes
//! every operation to the key's affinity shard; with a single shard it is
//! exactly the flat cache of the paper's single-GPU setup.

use hybrimoe_model::{shard_of, ExpertId, ExpertKey, LayerId, LayerRouting};

use crate::{CachePolicy, CacheStats, ExpertCache, InsertOutcome};

/// One expert cache per GPU shard, routed by the expert affinity map.
///
/// The total capacity is split as evenly as possible across shards (earlier
/// shards absorb the remainder), modeling each GPU's own memory budget.
/// Statistics aggregate over all shards.
///
/// # Example
///
/// ```
/// use hybrimoe_cache::{Mrs, ShardedExpertCache};
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
///
/// let mut cache = ShardedExpertCache::new(8, 2, || Box::new(Mrs::new(0.3)));
/// let k = ExpertKey::new(LayerId(1), ExpertId(4)); // shard 0 of 2
/// assert!(!cache.lookup(k)); // miss
/// cache.insert(k);
/// assert!(cache.lookup(k)); // hit, on shard 0
/// assert_eq!(cache.shard(0).len(), 1);
/// assert_eq!(cache.shard(1).len(), 0);
/// ```
#[derive(Debug)]
pub struct ShardedExpertCache {
    shards: Vec<ExpertCache>,
}

impl ShardedExpertCache {
    /// Creates `num_shards` cache shards totalling `capacity` experts, each
    /// shard with its own replacement-policy instance from
    /// `policy_builder`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn new(
        capacity: usize,
        num_shards: usize,
        mut policy_builder: impl FnMut() -> Box<dyn CachePolicy>,
    ) -> Self {
        assert!(num_shards > 0, "a cache needs at least one shard");
        let base = capacity / num_shards;
        let remainder = capacity % num_shards;
        let shards = (0..num_shards)
            .map(|s| ExpertCache::new(base + usize::from(s < remainder), policy_builder()))
            .collect();
        ShardedExpertCache { shards }
    }

    /// Number of shards (GPUs).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `key` under the affinity map.
    fn shard_mut(&mut self, key: ExpertKey) -> &mut ExpertCache {
        let s = shard_of(key.expert, self.shards.len());
        &mut self.shards[s]
    }

    /// The shard holding `key` under the affinity map (shared access).
    fn shard_ref(&self, key: ExpertKey) -> &ExpertCache {
        let s = shard_of(key.expert, self.shards.len());
        &self.shards[s]
    }

    /// Shard `index`'s cache (per-GPU inspection).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn shard(&self, index: usize) -> &ExpertCache {
        &self.shards[index]
    }

    /// The policy name (identical for every shard).
    pub fn policy_name(&self) -> &str {
        self.shards[0].policy_name()
    }

    /// Total capacity in experts across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(ExpertCache::capacity).sum()
    }

    /// Total resident experts across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(ExpertCache::len).sum()
    }

    /// Whether no experts are resident on any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(ExpertCache::is_empty)
    }

    /// Total free expert slots across all shards.
    pub fn free_slots(&self) -> usize {
        self.shards.iter().map(ExpertCache::free_slots).sum()
    }

    /// Whether `key` is resident (on its affinity shard), without recording
    /// a lookup.
    pub fn contains(&self, key: ExpertKey) -> bool {
        self.shard_ref(key).contains(key)
    }

    /// Looks up `key` on its affinity shard, recording a hit or miss there.
    pub fn lookup(&mut self, key: ExpertKey) -> bool {
        self.shard_mut(key).lookup(key)
    }

    /// Forwards one layer's routing to every shard's policy: score
    /// estimates are device-local, but every shard observes the full
    /// routing so its estimates for its own experts stay current.
    pub fn note_routing(&mut self, routing: &LayerRouting, activated_k: u16) {
        for shard in &mut self.shards {
            shard.note_routing(routing, activated_k);
        }
    }

    /// Inserts `key` into its affinity shard, evicting a shard-local victim
    /// if that shard is full.
    pub fn insert(&mut self, key: ExpertKey) -> InsertOutcome {
        self.shard_mut(key).insert(key)
    }

    /// Inserts `key` into its affinity shard; experts in `protect` are not
    /// eligible victims.
    pub fn insert_protected(&mut self, key: ExpertKey, protect: &[ExpertKey]) -> InsertOutcome {
        self.shard_mut(key).insert_protected(key, protect)
    }

    /// Inserts `key` only if its affinity shard has free space (the
    /// prefetch path).
    pub fn insert_if_free(&mut self, key: ExpertKey) -> InsertOutcome {
        self.shard_mut(key).insert_if_free(key)
    }

    /// Pins `key` on its affinity shard.
    pub fn pin(&mut self, key: ExpertKey) {
        self.shard_mut(key).pin(key)
    }

    /// Removes the pin from `key`.
    pub fn unpin(&mut self, key: ExpertKey) {
        self.shard_mut(key).unpin(key)
    }

    /// Whether `key` is pinned on its affinity shard.
    pub fn is_pinned(&self, key: ExpertKey) -> bool {
        self.shard_ref(key).is_pinned(key)
    }

    /// The resident experts of `layer` across all shards, ascending by
    /// expert id.
    pub fn cached_in_layer(&self, layer: LayerId) -> Vec<ExpertId> {
        let mut all: Vec<ExpertId> = self
            .shards
            .iter()
            .flat_map(|s| s.cached_in_layer(layer))
            .collect();
        all.sort_unstable();
        all
    }

    /// All resident experts across all shards, ascending by key.
    pub fn resident_keys(&self) -> Vec<ExpertKey> {
        let mut all: Vec<ExpertKey> = self.shards.iter().flat_map(|s| s.resident_keys()).collect();
        all.sort_unstable();
        all
    }

    /// Statistics summed over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats());
        }
        total
    }

    /// Resets every shard's statistics without touching residency or
    /// policy state.
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lru, Mrs};

    fn key(l: u16, e: u16) -> ExpertKey {
        ExpertKey::new(LayerId(l), ExpertId(e))
    }

    fn sharded(capacity: usize, shards: usize) -> ShardedExpertCache {
        ShardedExpertCache::new(capacity, shards, || Box::new(Lru::new()))
    }

    #[test]
    fn capacity_splits_evenly_with_remainder_up_front() {
        let c = sharded(7, 3);
        assert_eq!(c.capacity(), 7);
        assert_eq!(c.shard(0).capacity(), 3);
        assert_eq!(c.shard(1).capacity(), 2);
        assert_eq!(c.shard(2).capacity(), 2);
    }

    #[test]
    fn keys_land_on_their_affinity_shard() {
        let mut c = sharded(8, 2);
        c.insert(key(0, 0)); // shard 0
        c.insert(key(0, 1)); // shard 1
        c.insert(key(3, 2)); // shard 0
        assert_eq!(c.shard(0).len(), 2);
        assert_eq!(c.shard(1).len(), 1);
        assert!(c.contains(key(0, 1)));
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn eviction_is_shard_local() {
        // 2 slots per shard; filling shard 0 beyond capacity must never
        // evict a shard-1 resident.
        let mut c = sharded(4, 2);
        c.insert(key(0, 0));
        c.insert(key(0, 2));
        c.insert(key(0, 1)); // shard 1 resident
        let out = c.insert(key(0, 4)); // shard 0 full → evicts shard-0 LRU
        assert_eq!(out, InsertOutcome::InsertedEvicting(key(0, 0)));
        assert!(c.contains(key(0, 1)), "shard 1 resident evicted");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn single_shard_behaves_like_flat_cache() {
        let mut flat = ExpertCache::new(2, Box::new(Lru::new()));
        let mut one = sharded(2, 1);
        for k in [key(0, 0), key(0, 1), key(0, 2)] {
            assert_eq!(flat.lookup(k), one.lookup(k));
            assert_eq!(flat.insert(k), one.insert(k));
        }
        assert_eq!(flat.stats(), one.stats());
        assert_eq!(
            flat.resident_keys().collect::<Vec<_>>(),
            one.resident_keys()
        );
    }

    #[test]
    fn insert_if_free_respects_shard_capacity() {
        let mut c = sharded(2, 2); // one slot per shard
        assert_eq!(c.insert_if_free(key(0, 0)), InsertOutcome::Inserted);
        // Shard 0 is full even though shard 1 has a free slot.
        assert_eq!(c.insert_if_free(key(0, 2)), InsertOutcome::Refused);
        assert_eq!(c.insert_if_free(key(0, 1)), InsertOutcome::Inserted);
        assert_eq!(c.free_slots(), 0);
    }

    #[test]
    fn pinning_is_per_shard() {
        let mut c = sharded(2, 2);
        c.insert(key(0, 0));
        c.pin(key(0, 0));
        assert!(c.is_pinned(key(0, 0)));
        assert_eq!(c.insert(key(0, 2)), InsertOutcome::Refused);
        c.unpin(key(0, 0));
        assert!(!c.is_pinned(key(0, 0)));
        assert_eq!(
            c.insert(key(0, 2)),
            InsertOutcome::InsertedEvicting(key(0, 0))
        );
    }

    #[test]
    fn cached_in_layer_merges_shards_sorted() {
        let mut c = sharded(8, 2);
        for e in [3u16, 0, 1, 6] {
            c.insert(key(1, e));
        }
        assert_eq!(
            c.cached_in_layer(LayerId(1)),
            vec![ExpertId(0), ExpertId(1), ExpertId(3), ExpertId(6)]
        );
    }

    #[test]
    fn mrs_scores_stay_device_local() {
        use hybrimoe_model::RouterOutput;
        let mut c = ShardedExpertCache::new(2, 2, || Box::new(Mrs::new(0.5)));
        // Expert 0 and 2 on shard 0; score mass on expert 0.
        let routing = LayerRouting::from_tokens(
            LayerId(0),
            4,
            &[RouterOutput::route(&[6.0, 0.0, 1.0, 0.0], 2)],
        );
        c.note_routing(&routing, 2);
        c.insert(key(0, 2));
        // Shard 0 has one slot: inserting the higher-scoring expert 0
        // evicts expert 2 — a purely shard-local MRS decision.
        assert_eq!(
            c.insert(key(0, 0)),
            InsertOutcome::InsertedEvicting(key(0, 2))
        );
        // Shard 1 is untouched by any of this.
        assert_eq!(c.shard(1).len(), 0);
        assert_eq!(c.shard(1).stats(), CacheStats::default());
    }

    #[test]
    fn reset_stats_clears_all_shards() {
        let mut c = sharded(4, 2);
        c.insert(key(0, 0));
        c.lookup(key(0, 0));
        c.lookup(key(0, 1));
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.contains(key(0, 0)));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = sharded(4, 0);
    }
}
