//! # hybrimoe-cache
//!
//! The GPU expert cache of the HybriMoE system and its replacement
//! policies:
//!
//! * [`Lru`] — least-recently-used, the baseline the paper compares against
//!   in Fig. 9 (and the policy AdapMoE uses);
//! * [`Lfu`] — least-frequently-used, as used by PowerInfer/llama.cpp/
//!   kTransformers (Table I);
//! * [`Mrs`] — the paper's score-aware **Minus Recent Score** policy
//!   (§IV-D): an exponentially averaged routing-score estimate
//!   `S = α·TopP(s) + (1−α)·S`, evicting the cached expert with the lowest
//!   estimate.
//!
//! The [`ExpertCache`] container tracks which experts are resident in GPU
//! memory, supports pinning (shared experts are never evicted), and records
//! hit/miss/eviction statistics. On multi-GPU platforms a
//! [`ShardedExpertCache`] keeps one cache (and one policy instance) per
//! GPU shard, routed by the expert→shard affinity map, so residency and
//! score estimates stay device-local.
//!
//! ## Example
//!
//! ```
//! use hybrimoe_cache::{ExpertCache, Lru};
//! use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
//!
//! let mut cache = ExpertCache::new(2, Box::new(Lru::new()));
//! let a = ExpertKey::new(LayerId(0), ExpertId(0));
//! let b = ExpertKey::new(LayerId(0), ExpertId(1));
//! let c = ExpertKey::new(LayerId(0), ExpertId(2));
//! cache.insert(a);
//! cache.insert(b);
//! assert!(cache.lookup(a));   // hit, refreshes A
//! cache.insert(c);            // evicts B (least recently used)
//! assert!(cache.contains(a));
//! assert!(!cache.contains(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod lfu;
mod lru;
mod mrs;
mod policy;
#[cfg(test)]
mod policy_tests;
mod sharded;
mod stats;

pub use cache::{ExpertCache, InsertOutcome};
pub use lfu::Lfu;
pub use lru::Lru;
pub use mrs::Mrs;
pub use policy::CachePolicy;
pub use sharded::ShardedExpertCache;
pub use stats::CacheStats;
