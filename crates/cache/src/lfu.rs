//! Least-frequently-used replacement.

use std::collections::HashMap;

use hybrimoe_model::{ExpertKey, LayerRouting};

use crate::CachePolicy;

/// LFU with recency tie-break: evicts the resident expert with the fewest
/// recorded accesses, using the older last-access to break ties.
///
/// PowerInfer, llama.cpp and kTransformers manage their caches this way
/// (paper Table I); frequency is a poor signal for MoE because long-run
/// expert frequencies are close to uniform (Fig. 3(a)).
///
/// # Example
///
/// ```
/// use hybrimoe_cache::{CachePolicy, Lfu};
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
///
/// let mut lfu = Lfu::new();
/// let a = ExpertKey::new(LayerId(0), ExpertId(0));
/// let b = ExpertKey::new(LayerId(0), ExpertId(1));
/// lfu.on_insert(a, 1);
/// lfu.on_insert(b, 2);
/// lfu.on_access(a, 3);
/// lfu.on_access(a, 4);
/// lfu.on_access(b, 5);
/// assert_eq!(lfu.choose_victim(&[a, b]), Some(b));
/// ```
#[derive(Debug, Default)]
pub struct Lfu {
    counts: HashMap<ExpertKey, u64>,
    last_access: HashMap<ExpertKey, u64>,
}

impl Lfu {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        Lfu::default()
    }
}

impl CachePolicy for Lfu {
    fn name(&self) -> &str {
        "LFU"
    }

    fn on_routing(&mut self, _routing: &LayerRouting, _activated_k: u16) {}

    fn on_access(&mut self, key: ExpertKey, now: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.last_access.insert(key, now);
    }

    fn on_insert(&mut self, key: ExpertKey, now: u64) {
        self.counts.entry(key).or_insert(0);
        self.last_access.insert(key, now);
    }

    fn on_evict(&mut self, key: ExpertKey) {
        // Frequency history survives eviction (classic LFU keeps global
        // counts), but recency is reset.
        self.last_access.remove(&key);
    }

    fn choose_victim(&mut self, candidates: &[ExpertKey]) -> Option<ExpertKey> {
        candidates.iter().copied().min_by_key(|k| {
            (
                self.counts.get(k).copied().unwrap_or(0),
                self.last_access.get(k).copied().unwrap_or(0),
                *k,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_model::{ExpertId, LayerId};

    fn key(e: u16) -> ExpertKey {
        ExpertKey::new(LayerId(0), ExpertId(e))
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        for k in [key(0), key(1)] {
            lfu.on_insert(k, 0);
        }
        lfu.on_access(key(0), 1);
        lfu.on_access(key(0), 2);
        lfu.on_access(key(1), 3);
        assert_eq!(lfu.choose_victim(&[key(0), key(1)]), Some(key(1)));
    }

    #[test]
    fn frequency_ties_break_by_recency() {
        let mut lfu = Lfu::new();
        lfu.on_insert(key(0), 0);
        lfu.on_insert(key(1), 0);
        lfu.on_access(key(0), 10);
        lfu.on_access(key(1), 20);
        assert_eq!(lfu.choose_victim(&[key(0), key(1)]), Some(key(0)));
    }

    #[test]
    fn counts_survive_eviction() {
        let mut lfu = Lfu::new();
        lfu.on_insert(key(0), 0);
        lfu.on_access(key(0), 1);
        lfu.on_access(key(0), 2);
        lfu.on_evict(key(0));
        lfu.on_insert(key(0), 3);
        lfu.on_insert(key(1), 3);
        lfu.on_access(key(1), 4);
        // key(0) has 2 historical accesses vs key(1)'s 1.
        assert_eq!(lfu.choose_victim(&[key(0), key(1)]), Some(key(1)));
    }

    #[test]
    fn empty_candidates_give_none() {
        assert_eq!(Lfu::new().choose_victim(&[]), None);
    }
}
