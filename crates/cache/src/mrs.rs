//! Minus Recent Score (MRS): the paper's score-aware replacement policy.

use std::collections::HashMap;

use hybrimoe_model::{ExpertKey, LayerRouting};

use crate::CachePolicy;

/// The **Minus Recent Score** policy of §IV-D.
///
/// Per layer and iteration, the estimated priority score of every expert is
/// updated from the router's softmax scores `s` (Eq. 3):
///
/// ```text
/// S = α · TopP(s) + (1 − α) · S
/// ```
///
/// where `TopP` keeps only the largest `p` scores of the iteration and
/// zeroes the rest — the paper observes that reuse probability is flat below
/// the top scores (Fig. 3(b)), so accumulating small scores would only add
/// noise. `p` defaults to **twice the number of activated experts** (§IV-D).
/// The eviction victim is the resident expert with the smallest estimate.
///
/// # Example
///
/// ```
/// use hybrimoe_cache::{CachePolicy, Mrs};
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId, LayerRouting, RouterOutput};
///
/// let mut mrs = Mrs::new(0.3);
/// // One token strongly preferring expert 0:
/// let routing = LayerRouting::from_tokens(
///     LayerId(0), 4, &[RouterOutput::route(&[4.0, 2.0, 0.0, 0.0], 1)]);
/// mrs.on_routing(&routing, 1);
/// let lo = ExpertKey::new(LayerId(0), ExpertId(3));
/// let hi = ExpertKey::new(LayerId(0), ExpertId(0));
/// assert_eq!(mrs.choose_victim(&[hi, lo]), Some(lo));
/// ```
#[derive(Debug)]
pub struct Mrs {
    alpha: f64,
    p_override: Option<u16>,
    scores: HashMap<ExpertKey, f64>,
}

impl Mrs {
    /// Creates the policy with averaging coefficient `alpha` and the default
    /// top-P cutoff of `2 × K`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Mrs {
            alpha,
            p_override: None,
            scores: HashMap::new(),
        }
    }

    /// Creates the policy with an explicit top-P cutoff instead of `2 × K`
    /// (used by the ablation benches).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1` and `p > 0`.
    pub fn with_top_p(alpha: f64, p: u16) -> Self {
        assert!(p > 0, "top-p cutoff must be positive");
        let mut m = Mrs::new(alpha);
        m.p_override = Some(p);
        m
    }

    /// The current estimated priority score of `key` (0 if never routed).
    pub fn score(&self, key: ExpertKey) -> f64 {
        self.scores.get(&key).copied().unwrap_or(0.0)
    }

    /// The averaging coefficient α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl CachePolicy for Mrs {
    fn name(&self) -> &str {
        "MRS"
    }

    fn on_routing(&mut self, routing: &LayerRouting, activated_k: u16) {
        let mean = routing.mean_scores();
        let p = self.p_override.unwrap_or_else(|| (2 * activated_k).max(1)) as usize;
        // Find the top-p cutoff value.
        let mut sorted: Vec<f32> = mean.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let cutoff = sorted
            .get(p.saturating_sub(1))
            .copied()
            .unwrap_or(f32::NEG_INFINITY);
        // Count how many meet the cutoff to keep exactly p under ties.
        let mut kept = 0usize;
        for (i, &s) in mean.iter().enumerate() {
            let key = ExpertKey::new(routing.layer(), hybrimoe_model::ExpertId(i as u16));
            let top = s >= cutoff && kept < p && s > 0.0;
            if top {
                kept += 1;
            }
            let contribution = if top { s as f64 } else { 0.0 };
            let entry = self.scores.entry(key).or_insert(0.0);
            *entry = self.alpha * contribution + (1.0 - self.alpha) * *entry;
        }
    }

    fn on_access(&mut self, _key: ExpertKey, _now: u64) {}

    fn on_insert(&mut self, _key: ExpertKey, _now: u64) {}

    fn on_evict(&mut self, _key: ExpertKey) {
        // Scores persist across residency changes: an evicted expert keeps
        // its estimate and competes normally when re-inserted.
    }

    fn choose_victim(&mut self, candidates: &[ExpertKey]) -> Option<ExpertKey> {
        candidates.iter().copied().min_by(|a, b| {
            let sa = self.score(*a);
            let sb = self.score(*b);
            sa.partial_cmp(&sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_model::{ExpertId, LayerId, RouterOutput};

    fn key(l: u16, e: u16) -> ExpertKey {
        ExpertKey::new(LayerId(l), ExpertId(e))
    }

    fn routing_from_logits(layer: u16, logits: &[f32], k: usize) -> LayerRouting {
        LayerRouting::from_tokens(
            LayerId(layer),
            logits.len() as u16,
            &[RouterOutput::route(logits, k)],
        )
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = Mrs::new(0.0);
    }

    #[test]
    fn scores_follow_ewma() {
        let mut mrs = Mrs::new(0.5);
        let r = routing_from_logits(0, &[10.0, 0.0, 0.0, 0.0], 1);
        mrs.on_routing(&r, 1);
        let s1 = mrs.score(key(0, 0));
        assert!(s1 > 0.4, "first update should be ~alpha*score, got {s1}");
        mrs.on_routing(&r, 1);
        let s2 = mrs.score(key(0, 0));
        assert!(s2 > s1, "repeated activation grows the estimate");
        assert!(s2 <= 1.0);
    }

    #[test]
    fn non_top_p_scores_decay() {
        let mut mrs = Mrs::with_top_p(0.5, 1);
        // Round 1: expert 0 dominates, gets credit.
        mrs.on_routing(&routing_from_logits(0, &[10.0, 0.0, 0.0, 0.0], 1), 1);
        let before = mrs.score(key(0, 0));
        // Round 2: expert 1 dominates; expert 0 is outside top-1 and decays.
        mrs.on_routing(&routing_from_logits(0, &[0.0, 10.0, 0.0, 0.0], 1), 1);
        let after = mrs.score(key(0, 0));
        assert!(after < before);
        assert!((after - before * 0.5).abs() < 1e-9);
    }

    #[test]
    fn victim_is_lowest_score() {
        let mut mrs = Mrs::new(0.3);
        mrs.on_routing(&routing_from_logits(0, &[3.0, 2.0, 1.0, 0.0], 2), 1);
        let cands = vec![key(0, 0), key(0, 1), key(0, 3)];
        assert_eq!(mrs.choose_victim(&cands), Some(key(0, 3)));
    }

    #[test]
    fn top_p_defaults_to_twice_k() {
        let mut mrs = Mrs::new(1.0); // alpha=1: S = TopP(s)
                                     // 6 experts, k=1 → p=2: only the top two experts get credit.
        mrs.on_routing(
            &routing_from_logits(0, &[5.0, 4.0, 3.0, 2.0, 1.0, 0.0], 1),
            1,
        );
        assert!(mrs.score(key(0, 0)) > 0.0);
        assert!(mrs.score(key(0, 1)) > 0.0);
        assert_eq!(mrs.score(key(0, 2)), 0.0);
        assert_eq!(mrs.score(key(0, 5)), 0.0);
    }

    #[test]
    fn scores_are_per_layer() {
        let mut mrs = Mrs::new(0.5);
        mrs.on_routing(&routing_from_logits(0, &[10.0, 0.0, 0.0, 0.0], 1), 1);
        assert!(mrs.score(key(0, 0)) > 0.0);
        assert_eq!(mrs.score(key(1, 0)), 0.0);
    }

    #[test]
    fn scores_survive_eviction() {
        let mut mrs = Mrs::new(0.5);
        mrs.on_routing(&routing_from_logits(0, &[10.0, 0.0, 0.0, 0.0], 1), 1);
        let before = mrs.score(key(0, 0));
        mrs.on_evict(key(0, 0));
        assert_eq!(mrs.score(key(0, 0)), before);
    }

    #[test]
    fn empty_candidates_give_none() {
        assert_eq!(Mrs::new(0.3).choose_victim(&[]), None);
    }
}
